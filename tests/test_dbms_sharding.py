"""Tests for the sharded parallel execution engine.

The load-bearing property is *exact mergeability*: per-shard sufficient
statistics summed across shards must answer Q1/Q2 identically (to summation
rounding) to the single-engine paths, across dimensions, norm orders,
backends, empty subspaces, and rank-deficient selections.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ols import OLSRegressor
from repro.data.synthetic import SyntheticDataset
from repro.dbms.executor import (
    ExactQueryEngine,
    q1_sufficient_statistics_scan,
    q2_sufficient_statistics_scan,
    solve_q2_sufficient_statistics,
)
from repro.dbms.sharding import ShardedQueryEngine, shard_bounds
from repro.dbms.storage import SQLiteDataStore
from repro.exceptions import ConfigurationError, EmptySubspaceError, StorageError
from repro.queries.query import Query

DIMENSIONS = (1, 2, 6)
TOLERANCE = 1e-12


def _dataset(dimension: int, size: int = 3_000, seed: int = 3) -> SyntheticDataset:
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(0.0, 1.0, size=(size, dimension))
    slope = rng.normal(0.0, 1.0, size=dimension)
    outputs = 1.0 + inputs @ slope + 0.05 * rng.normal(0.0, 1.0, size=size)
    return SyntheticDataset(
        inputs=inputs, outputs=outputs, name=f"shard{dimension}", domain=(0.0, 1.0)
    )


def _mixed_queries(
    dataset: SyntheticDataset, count: int = 30, seed: int = 11
) -> list[Query]:
    """In-domain queries (several norms), empty probes and tiny selections."""
    rng = np.random.default_rng(seed)
    dimension = dataset.dimension
    queries: list[Query] = []
    for index in range(count):
        if index % 9 == 0:
            queries.append(
                Query(center=rng.uniform(6.0, 7.0, size=dimension), radius=0.01)
            )
        elif index % 7 == 0:
            # A handful of rows at most: exercises the rank-deficient /
            # exactly-determined fallback of the blocked solve.
            anchor = dataset.inputs[int(rng.integers(dataset.size))]
            queries.append(Query(center=anchor + 1e-6, radius=2e-4))
        else:
            order = (1.0, 2.0, np.inf)[index % 3]
            queries.append(
                Query(
                    center=rng.uniform(0.0, 1.0, size=dimension),
                    radius=float(rng.uniform(0.05, 0.4)),
                    norm_order=order,
                )
            )
    return queries


def _assert_answers_match(sharded_answers, reference_answers) -> None:
    for answer, reference in zip(sharded_answers, reference_answers):
        if reference is None:
            assert answer is None
            continue
        assert answer is not None
        assert answer.cardinality == reference.cardinality
        np.testing.assert_allclose(
            answer.mean, reference.mean, rtol=TOLERANCE, atol=TOLERANCE
        )
        if reference.coefficients is not None:
            np.testing.assert_allclose(
                answer.coefficients,
                reference.coefficients,
                rtol=1e-9,
                atol=TOLERANCE,
            )
            np.testing.assert_allclose(
                answer.r_squared, reference.r_squared, rtol=1e-9, atol=1e-9
            )


class TestShardBounds:
    def test_bounds_partition_rows(self):
        bounds = shard_bounds(1000, 3)
        assert bounds[0] == 0 and bounds[-1] == 1000
        assert np.all(np.diff(bounds) > 0)

    def test_invalid_shard_count(self):
        with pytest.raises(ConfigurationError):
            shard_bounds(100, 0)


@pytest.mark.parametrize("dimension", DIMENSIONS)
class TestShardedEquivalence:
    def test_q2_matches_per_query_engine(self, dimension):
        dataset = _dataset(dimension)
        reference = ExactQueryEngine(dataset)
        queries = _mixed_queries(dataset)
        with ShardedQueryEngine(dataset, num_shards=3, backend="serial") as engine:
            answers = engine.execute_q2_batch(queries, on_empty="null")
        expected = []
        for query in queries:
            try:
                expected.append(reference.execute_q2(query))
            except EmptySubspaceError:
                expected.append(None)
        _assert_answers_match(answers, expected)

    def test_q1_matches_per_query_engine(self, dimension):
        dataset = _dataset(dimension)
        reference = ExactQueryEngine(dataset)
        queries = _mixed_queries(dataset)
        with ShardedQueryEngine(dataset, num_shards=3, backend="serial") as engine:
            answers = engine.execute_q1_batch(queries, on_empty="null")
        for query, answer in zip(queries, answers):
            try:
                expected = reference.execute_q1(query)
            except EmptySubspaceError:
                assert answer is None
                continue
            assert answer is not None
            assert answer.cardinality == expected.cardinality
            np.testing.assert_allclose(
                answer.mean, expected.mean, rtol=TOLERANCE, atol=TOLERANCE
            )

    def test_sharded_matches_unsharded_batch(self, dimension):
        dataset = _dataset(dimension)
        batch_engine = ExactQueryEngine(dataset)
        queries = _mixed_queries(dataset)
        unsharded = batch_engine.execute_q2_batch(queries, on_empty="null")
        with ShardedQueryEngine(dataset, num_shards=4, backend="threads") as engine:
            sharded = engine.execute_q2_batch(queries, on_empty="null")
        _assert_answers_match(sharded, unsharded)

    def test_shard_count_does_not_change_answers(self, dimension):
        dataset = _dataset(dimension, size=1_200)
        queries = _mixed_queries(dataset, count=12, seed=5)
        results = []
        for shards in (1, 2, 5):
            with ShardedQueryEngine(
                dataset, num_shards=shards, backend="serial"
            ) as engine:
                results.append(engine.execute_q2_batch(queries, on_empty="null"))
        _assert_answers_match(results[1], results[0])
        _assert_answers_match(results[2], results[0])


class TestShardMergeStatistics:
    """Blocked statistics of row partitions must merge to the full-scan ones."""

    def test_q2_moments_merge_exactly(self):
        dataset = _dataset(2, size=900)
        centers = np.array([[0.5, 0.5], [0.2, 0.8], [0.9, 0.1]])
        radii = np.array([0.25, 0.15, 0.3])
        full_counts, full_moments = q2_sufficient_statistics_scan(
            dataset.inputs, dataset.outputs, centers, radii
        )
        bounds = shard_bounds(dataset.size, 3)
        counts = np.zeros_like(full_counts)
        moments = np.zeros_like(full_moments)
        for start, stop in zip(bounds[:-1], bounds[1:]):
            shard_counts, shard_moments = q2_sufficient_statistics_scan(
                dataset.inputs[start:stop],
                dataset.outputs[start:stop],
                centers,
                radii,
            )
            counts += shard_counts
            moments += shard_moments
        np.testing.assert_array_equal(counts, full_counts)
        np.testing.assert_allclose(moments, full_moments, rtol=1e-12, atol=1e-12)
        solution = solve_q2_sufficient_statistics(counts, moments, centers)
        for index in range(centers.shape[0]):
            rows = np.nonzero(
                np.linalg.norm(dataset.inputs - centers[index], axis=1)
                <= radii[index]
            )[0]
            direct = OLSRegressor().fit(dataset.inputs[rows], dataset.outputs[rows])
            np.testing.assert_allclose(
                solution.coefficients[index],
                direct.coefficients,
                rtol=1e-9,
                atol=TOLERANCE,
            )

    def test_q1_statistics_merge_exactly(self):
        dataset = _dataset(2, size=700)
        centers = np.array([[0.4, 0.6], [0.8, 0.2]])
        radii = np.array([0.2, 0.25])
        full_counts, full_sums = q1_sufficient_statistics_scan(
            dataset.inputs, dataset.outputs, centers, radii
        )
        bounds = shard_bounds(dataset.size, 4)
        counts = np.zeros_like(full_counts)
        sums = np.zeros_like(full_sums)
        for start, stop in zip(bounds[:-1], bounds[1:]):
            shard_counts, shard_sums = q1_sufficient_statistics_scan(
                dataset.inputs[start:stop],
                dataset.outputs[start:stop],
                centers,
                radii,
            )
            counts += shard_counts
            sums += shard_sums
        np.testing.assert_array_equal(counts, full_counts)
        np.testing.assert_allclose(sums, full_sums, rtol=1e-12, atol=1e-12)

    def test_rank_deficient_shards_merge_to_full_rank_answer(self):
        # Every shard alone holds fewer than d + 1 selected rows, but the
        # merged statistics recover the full-rank OLS plane.
        rng = np.random.default_rng(9)
        inputs = rng.uniform(0.45, 0.55, size=(9, 2))
        outputs = 2.0 + inputs @ np.array([1.5, -0.5])
        dataset = SyntheticDataset(
            inputs=inputs, outputs=outputs, name="tiny", domain=(0.0, 1.0)
        )
        query = Query(center=np.array([0.5, 0.5]), radius=0.4)
        reference = ExactQueryEngine(dataset).execute_q2(query)
        with ShardedQueryEngine(dataset, num_shards=5, backend="serial") as engine:
            answer = engine.execute_q2(query)
        assert answer.cardinality == reference.cardinality == 9
        np.testing.assert_allclose(
            answer.coefficients, reference.coefficients, rtol=1e-9, atol=TOLERANCE
        )


class TestBackends:
    def test_threads_and_serial_agree(self):
        dataset = _dataset(2)
        queries = _mixed_queries(dataset, count=15)
        with ShardedQueryEngine(dataset, num_shards=3, backend="serial") as serial:
            expected = serial.execute_q2_batch(queries, on_empty="null")
        with ShardedQueryEngine(dataset, num_shards=3, backend="threads") as threaded:
            actual = threaded.execute_q2_batch(queries, on_empty="null")
        _assert_answers_match(actual, expected)

    def test_process_backend_smoke(self):
        dataset = _dataset(2, size=800)
        query = Query(center=np.array([0.5, 0.5]), radius=0.25)
        reference = ExactQueryEngine(dataset).execute_q2(query)
        with ShardedQueryEngine(
            dataset, num_shards=2, backend="processes", max_workers=2
        ) as engine:
            answer = engine.execute_q2(query)
        assert answer.cardinality == reference.cardinality
        np.testing.assert_allclose(
            answer.coefficients, reference.coefficients, rtol=1e-9, atol=TOLERANCE
        )

    def test_invalid_backend(self):
        with pytest.raises(ConfigurationError):
            ShardedQueryEngine(_dataset(1, size=50), backend="fibers")


class TestIndexedRouting:
    """Per-shard grid-indexed execution and the adaptive route planner."""

    def test_invalid_route_rejected(self):
        dataset = _dataset(1, size=50)
        with pytest.raises(ConfigurationError):
            ShardedQueryEngine(dataset, backend="serial", route="btree")
        with ShardedQueryEngine(dataset, backend="serial") as engine:
            with pytest.raises(ConfigurationError):
                engine.route = "fastest"

    @pytest.mark.parametrize("dimension", DIMENSIONS)
    def test_indexed_route_matches_scan_route(self, dimension):
        dataset = _dataset(dimension)
        queries = _mixed_queries(dataset)
        results = {}
        for route in ("scan", "indexed", "auto"):
            with ShardedQueryEngine(
                dataset, num_shards=3, backend="serial", route=route
            ) as engine:
                results[route] = engine.execute_q2_batch(queries, on_empty="null")
        _assert_answers_match(results["indexed"], results["scan"])
        _assert_answers_match(results["auto"], results["scan"])

    def test_indexed_route_scans_fewer_rows_on_selective_batch(self):
        dataset = _dataset(2, size=4_000)
        rng = np.random.default_rng(17)
        queries = [
            Query(center=rng.uniform(0.2, 0.8, size=2), radius=0.03)
            for _ in range(10)
        ]
        with ShardedQueryEngine(
            dataset, num_shards=3, backend="serial", route="scan"
        ) as engine:
            scan_answers = engine.execute_q1_batch(queries, on_empty="null")
            scan_rows = engine.statistics.rows_scanned
        with ShardedQueryEngine(
            dataset, num_shards=3, backend="serial", route="indexed"
        ) as engine:
            indexed_answers = engine.execute_q1_batch(queries, on_empty="null")
            indexed_rows = engine.statistics.rows_scanned
        assert scan_rows == len(queries) * dataset.size
        assert indexed_rows < scan_rows / 5
        _assert_answers_match(indexed_answers, scan_answers)

    def test_auto_routes_by_selectivity(self):
        dataset = _dataset(2, size=4_000)
        selective = [Query(center=np.array([0.5, 0.5]), radius=0.02)]
        unselective = [Query(center=np.array([0.5, 0.5]), radius=0.45)]
        with ShardedQueryEngine(
            dataset, num_shards=2, backend="serial", route="auto"
        ) as engine:
            engine.execute_q1_batch(selective, on_empty="null")
            selective_rows = engine.statistics.rows_scanned
            engine.statistics.reset()
            engine.execute_q1_batch(unselective, on_empty="null")
            unselective_rows = engine.statistics.rows_scanned
        assert selective_rows < dataset.size / 5
        assert unselective_rows == dataset.size

    def test_pipelines_built_lazily_and_only_for_indexed_routes(self):
        dataset = _dataset(2, size=1_000)
        queries = _mixed_queries(dataset, count=6, seed=3)
        with ShardedQueryEngine(
            dataset, num_shards=3, backend="serial", route="scan"
        ) as engine:
            engine.execute_q1_batch(queries, on_empty="null")
            assert all(pipeline is None for pipeline in engine._pipelines)
            engine.route = "indexed"
            engine.execute_q1_batch(queries, on_empty="null")
            assert all(pipeline is not None for pipeline in engine._pipelines)

    def test_indexed_route_thread_and_process_backends(self):
        dataset = _dataset(2, size=900)
        queries = _mixed_queries(dataset, count=10, seed=13)
        with ShardedQueryEngine(
            dataset, num_shards=3, backend="serial", route="indexed"
        ) as engine:
            expected = engine.execute_q2_batch(queries, on_empty="null")
        for backend in ("threads", "processes"):
            with ShardedQueryEngine(
                dataset,
                num_shards=3,
                backend=backend,
                max_workers=2,
                route="indexed",
            ) as engine:
                actual = engine.execute_q2_batch(queries, on_empty="null")
            _assert_answers_match(actual, expected)

    def test_from_store_indexed_route_matches_memory(self):
        dataset = _dataset(2, size=700)
        queries = _mixed_queries(dataset, count=8, seed=29)
        with ShardedQueryEngine(
            dataset, num_shards=3, backend="serial", route="indexed"
        ) as engine:
            expected = engine.execute_q2_batch(queries, on_empty="null")
        with SQLiteDataStore(":memory:") as store:
            store.load_dataset(dataset)
            engine = ShardedQueryEngine.from_store(
                store, dataset.name, num_shards=3, backend="serial", route="indexed"
            )
        with engine:
            np.testing.assert_allclose(engine.dataset.inputs, dataset.inputs)
            actual = engine.execute_q2_batch(queries, on_empty="null")
        _assert_answers_match(actual, expected)


class TestEngineContract:
    def test_on_empty_raise(self):
        dataset = _dataset(2, size=500)
        with ShardedQueryEngine(dataset, num_shards=2, backend="serial") as engine:
            with pytest.raises(EmptySubspaceError):
                engine.execute_q1_batch(
                    [Query(center=np.array([9.0, 9.0]), radius=0.01)]
                )
            with pytest.raises(EmptySubspaceError):
                engine.execute_q2_batch(
                    [Query(center=np.array([9.0, 9.0]), radius=0.01)]
                )

    def test_on_empty_null_alignment(self):
        dataset = _dataset(2, size=500)
        queries = [
            Query(center=np.array([0.5, 0.5]), radius=0.3),
            Query(center=np.array([9.0, 9.0]), radius=0.01),
            Query(center=np.array([0.4, 0.4]), radius=0.3),
        ]
        with ShardedQueryEngine(dataset, num_shards=2, backend="serial") as engine:
            answers = engine.execute_q2_batch(queries, on_empty="null")
        assert answers[0] is not None and answers[2] is not None
        assert answers[1] is None

    def test_invalid_on_empty(self):
        dataset = _dataset(1, size=50)
        with ShardedQueryEngine(dataset, num_shards=1, backend="serial") as engine:
            with pytest.raises(ConfigurationError):
                engine.execute_q1_batch([], on_empty="skip")

    def test_dimension_mismatch(self):
        dataset = _dataset(2, size=100)
        with ShardedQueryEngine(dataset, num_shards=2, backend="serial") as engine:
            with pytest.raises(StorageError):
                engine.execute_q1_batch([Query(center=np.array([0.5]), radius=0.1)])

    def test_empty_batch(self):
        dataset = _dataset(1, size=50)
        with ShardedQueryEngine(dataset, num_shards=1, backend="serial") as engine:
            assert engine.execute_q1_batch([]) == []
            assert engine.execute_q2_batch([]) == []

    def test_statistics_accumulate(self):
        dataset = _dataset(2, size=400)
        with ShardedQueryEngine(dataset, num_shards=2, backend="serial") as engine:
            engine.execute_q1_batch(
                [Query(center=np.array([0.5, 0.5]), radius=0.3)]
            )
            stats = engine.statistics
            assert stats.queries_executed == 1
            assert stats.rows_scanned == dataset.size
            assert stats.rows_selected > 0
            assert stats.mean_seconds > 0.0

    def test_closed_engine_rejects_work(self):
        dataset = _dataset(1, size=50)
        engine = ShardedQueryEngine(dataset, num_shards=1, backend="serial")
        engine.close()
        with pytest.raises(StorageError):
            engine.execute_q1(Query(center=np.array([0.5]), radius=0.3))

    def test_mean_value_oracle(self):
        dataset = _dataset(2, size=400)
        query = Query(center=np.array([0.5, 0.5]), radius=0.3)
        reference = ExactQueryEngine(dataset)
        with ShardedQueryEngine(dataset, num_shards=2, backend="serial") as engine:
            assert engine.mean_value(query) == pytest.approx(
                reference.execute_q1(query).mean, abs=TOLERANCE
            )


class TestFromStore:
    def test_from_store_matches_in_memory(self):
        dataset = _dataset(2, size=600)
        queries = _mixed_queries(dataset, count=8, seed=21)
        with SQLiteDataStore(":memory:") as store:
            store.load_dataset(dataset)
            engine = ShardedQueryEngine.from_store(
                store, dataset.name, num_shards=3, backend="serial"
            )
        reference = ExactQueryEngine(dataset)
        with engine:
            answers = engine.execute_q2_batch(queries, on_empty="null")
        expected = []
        for query in queries:
            try:
                expected.append(reference.execute_q2(query))
            except EmptySubspaceError:
                expected.append(None)
        _assert_answers_match(answers, expected)

    def test_scan_row_range_partitions(self):
        dataset = _dataset(2, size=250)
        with SQLiteDataStore(":memory:") as store:
            store.load_dataset(dataset)
            first_inputs, first_outputs = store.scan_row_range(dataset.name, 0, 100)
            rest_inputs, rest_outputs = store.scan_row_range(dataset.name, 100, 250)
            assert first_inputs.shape == (100, 2)
            assert rest_inputs.shape == (150, 2)
            np.testing.assert_allclose(
                np.vstack([first_inputs, rest_inputs]), dataset.inputs
            )
            np.testing.assert_allclose(
                np.concatenate([first_outputs, rest_outputs]), dataset.outputs
            )
            with pytest.raises(StorageError):
                store.scan_row_range(dataset.name, 5, 2)


class TestStreamingTrainerIntegration:
    def test_label_queries_through_sharded_engine(self):
        from repro.core.model import LLMModel
        from repro.core.training import StreamingTrainer

        dataset = _dataset(2, size=800)
        queries = _mixed_queries(dataset, count=20, seed=31)
        reference_engine = ExactQueryEngine(dataset)
        model = LLMModel(dimension=2)
        with ShardedQueryEngine(dataset, num_shards=3, backend="serial") as engine:
            trainer = StreamingTrainer(model, engine)
            pairs = list(trainer.label_queries(queries, batch_size=6))
        reference = StreamingTrainer(LLMModel(dimension=2), reference_engine)
        expected = list(reference.label_queries(queries, batch_size=6))
        assert len(pairs) == len(expected)
        for pair, ref in zip(pairs, expected):
            assert pair.query is ref.query
            assert pair.answer == pytest.approx(ref.answer, abs=TOLERANCE)

    def test_label_queries_engine_auto_routes_and_restores(self):
        from repro.core.model import LLMModel
        from repro.core.training import StreamingTrainer

        dataset = _dataset(2, size=800)
        queries = _mixed_queries(dataset, count=12, seed=51)
        reference = StreamingTrainer(
            LLMModel(dimension=2), ExactQueryEngine(dataset)
        )
        expected = list(reference.label_queries(queries, batch_size=4))
        with ShardedQueryEngine(
            dataset, num_shards=3, backend="serial", route="scan"
        ) as engine:
            trainer = StreamingTrainer(LLMModel(dimension=2), engine)
            pairs = list(
                trainer.label_queries(queries, batch_size=4, engine="auto")
            )
            # The labelling run borrowed adaptive routing; the engine's own
            # policy is restored afterwards.
            assert engine.route == "scan"
        assert len(pairs) == len(expected)
        for pair, ref in zip(pairs, expected):
            assert pair.answer == pytest.approx(ref.answer, abs=TOLERANCE)

    def test_label_queries_explicit_engine_instance(self):
        from repro.core.model import LLMModel
        from repro.core.training import StreamingTrainer

        dataset = _dataset(2, size=500)
        queries = _mixed_queries(dataset, count=8, seed=61)
        trainer = StreamingTrainer(
            LLMModel(dimension=2), ExactQueryEngine(dataset)
        )
        with ShardedQueryEngine(dataset, num_shards=2, backend="serial") as other:
            pairs = list(trainer.label_queries(queries, batch_size=4, engine=other))
            assert other.statistics.queries_executed > 0
        assert trainer.engine.statistics.queries_executed == 0
        assert len(pairs) == len(
            list(trainer.label_queries(queries, batch_size=4))
        )

    def test_label_queries_rejects_unknown_engine_selector(self):
        from repro.core.model import LLMModel
        from repro.core.training import StreamingTrainer

        dataset = _dataset(2, size=200)
        trainer = StreamingTrainer(LLMModel(dimension=2), ExactQueryEngine(dataset))
        with pytest.raises(ValueError):
            list(trainer.label_queries([], engine="turbo"))

    def test_train_through_sharded_engine(self):
        from repro.core.model import LLMModel
        from repro.core.training import StreamingTrainer

        dataset = _dataset(2, size=600)
        queries = _mixed_queries(dataset, count=25, seed=41)
        model = LLMModel(dimension=2)
        with ShardedQueryEngine(dataset, num_shards=2, backend="serial") as engine:
            trainer = StreamingTrainer(model, engine)
            breakdown = trainer.train(queries)
        assert breakdown.pairs_processed > 0
        assert model.is_fitted
