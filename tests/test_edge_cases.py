"""Edge-case and failure-injection tests across the library.

These cover the awkward corners that the per-module unit tests do not:
degenerate workloads, non-Euclidean norms end to end, duplicate training
pairs, prototypes with extreme radii, and recovery behaviour after errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ExactQueryEngine,
    LLMModel,
    ModelConfig,
    Query,
    SQLiteDataStore,
    TrainingConfig,
)
from repro.data.synthetic import SyntheticDataset
from repro.exceptions import EmptySubspaceError, NotFittedError, StorageError


@pytest.fixture(scope="module")
def plane_dataset() -> SyntheticDataset:
    rng = np.random.default_rng(0)
    inputs = rng.uniform(0, 1, size=(2_000, 2))
    outputs = 0.5 + inputs[:, 0] - 0.25 * inputs[:, 1]
    return SyntheticDataset(inputs=inputs, outputs=outputs, name="plane", domain=(0.0, 1.0))


class TestDegenerateTraining:
    def test_single_training_pair_model_predicts_that_answer(self):
        model = LLMModel(dimension=2)
        query = Query(center=np.array([0.5, 0.5]), radius=0.1)
        model.partial_fit(query, 0.75)
        assert model.prototype_count == 1
        assert model.predict_mean(query) == pytest.approx(0.75)

    def test_identical_repeated_pairs_converge_to_the_answer(self):
        model = LLMModel(dimension=1, training=TrainingConfig(convergence_threshold=1e-9))
        query = Query(center=np.array([0.3]), radius=0.1)
        for _ in range(200):
            model.partial_fit(query, 2.5)
        assert model.prototype_count == 1
        assert model.predict_mean(query) == pytest.approx(2.5, abs=1e-6)

    def test_constant_answers_give_zero_slope_planes(self):
        rng = np.random.default_rng(1)
        model = LLMModel(dimension=2, config=ModelConfig(quantization_coefficient=0.1))
        for _ in range(300):
            center = rng.uniform(0, 1, size=2)
            model.partial_fit(Query(center=center, radius=0.1), 1.0)
        probe = Query(center=np.array([0.5, 0.5]), radius=0.2)
        assert model.predict_mean(probe) == pytest.approx(1.0, abs=1e-6)
        for plane in model.regression_models(probe):
            assert np.allclose(plane.slope, 0.0, atol=1e-6)

    def test_extreme_answer_magnitudes(self):
        model = LLMModel(dimension=1)
        rng = np.random.default_rng(2)
        for _ in range(100):
            center = rng.uniform(0, 1, size=1)
            model.partial_fit(Query(center=center, radius=0.1), float(center[0] * 1e6))
        prediction = model.predict_mean(Query(center=np.array([0.5]), radius=0.1))
        assert 0.0 < prediction < 1e6

    def test_negative_answers_supported(self):
        model = LLMModel(dimension=1)
        rng = np.random.default_rng(3)
        for _ in range(100):
            center = rng.uniform(0, 1, size=1)
            model.partial_fit(Query(center=center, radius=0.1), float(-center[0]))
        prediction = model.predict_mean(Query(center=np.array([0.8]), radius=0.1))
        assert prediction < 0.0


class TestNonEuclideanNorms:
    @pytest.mark.parametrize("norm_order", [1.0, np.inf])
    def test_engine_and_model_agree_on_norm(self, plane_dataset, norm_order):
        engine = ExactQueryEngine(plane_dataset)
        model = LLMModel(
            dimension=2,
            config=ModelConfig(quantization_coefficient=0.1, norm_order=norm_order),
        )
        rng = np.random.default_rng(4)
        trained = 0
        for _ in range(400):
            center = rng.uniform(0.1, 0.9, size=2)
            query = Query(center=center, radius=0.15, norm_order=norm_order)
            try:
                answer = engine.execute_q1(query).mean
            except EmptySubspaceError:
                continue
            model.partial_fit(query, answer)
            trained += 1
        assert trained > 300
        probe = Query(center=np.array([0.5, 0.5]), radius=0.15, norm_order=norm_order)
        exact = engine.execute_q1(probe).mean
        assert model.predict_mean(probe) == pytest.approx(exact, abs=0.15)


class TestHighDimensionalModel:
    def test_six_dimensional_training_and_prediction(self):
        rng = np.random.default_rng(5)
        model = LLMModel(dimension=6, config=ModelConfig(quantization_coefficient=0.2))
        for _ in range(300):
            center = rng.uniform(0, 1, size=6)
            model.partial_fit(Query(center=center, radius=0.4), float(center.mean()))
        probe = Query(center=np.full(6, 0.5), radius=0.4)
        assert model.predict_mean(probe) == pytest.approx(0.5, abs=0.15)
        planes = model.regression_models(probe)
        assert all(plane.dimension == 6 for plane in planes)


class TestErrorRecovery:
    def test_prediction_error_does_not_corrupt_model(self):
        model = LLMModel(dimension=2)
        with pytest.raises(NotFittedError):
            model.predict_mean(Query(center=np.array([0.5, 0.5]), radius=0.1))
        # Training still works after the failed call.
        model.partial_fit(Query(center=np.array([0.5, 0.5]), radius=0.1), 1.0)
        assert model.is_fitted

    def test_dimension_mismatch_leaves_parameters_untouched(self):
        model = LLMModel(dimension=2)
        model.partial_fit(Query(center=np.array([0.5, 0.5]), radius=0.1), 1.0)
        before = model.prototype_matrix().copy()
        with pytest.raises(Exception):
            model.partial_fit(Query(center=np.array([0.5]), radius=0.1), 1.0)
        assert np.allclose(model.prototype_matrix(), before)

    def test_store_rejects_unknown_table_after_failed_load(self, plane_dataset):
        store = SQLiteDataStore(":memory:")
        store.load_dataset(plane_dataset)
        with pytest.raises(StorageError):
            store.load_dataset(plane_dataset)  # duplicate name
        # The original table remains usable.
        assert store.row_count("plane") == plane_dataset.size
        store.close()

    def test_engine_usable_after_empty_subspace_error(self, plane_dataset):
        engine = ExactQueryEngine(plane_dataset)
        with pytest.raises(EmptySubspaceError):
            engine.execute_q1(Query(center=np.array([9.0, 9.0]), radius=0.01))
        answer = engine.execute_q1(Query(center=np.array([0.5, 0.5]), radius=0.2))
        assert answer.cardinality > 0


class TestRadiusExtremes:
    def test_huge_radius_query_returns_global_statistics(self, plane_dataset):
        engine = ExactQueryEngine(plane_dataset)
        query = Query(center=np.array([0.5, 0.5]), radius=10.0)
        answer = engine.execute_q1(query)
        assert answer.cardinality == plane_dataset.size
        assert answer.mean == pytest.approx(float(plane_dataset.outputs.mean()))

    def test_tiny_radius_prediction_extrapolates(self):
        model = LLMModel(dimension=2)
        rng = np.random.default_rng(6)
        for _ in range(100):
            center = rng.uniform(0, 1, size=2)
            model.partial_fit(Query(center=center, radius=0.2), float(center.sum()))
        # A probe with a vanishingly small radius never overlaps prototypes
        # whose own radii are ~0.2 only if it is far away; nearby it does.
        value, diagnostics = model.predict_mean_with_diagnostics(
            Query(center=np.array([5.0, 5.0]), radius=1e-6)
        )
        assert diagnostics.extrapolated
        assert np.isfinite(value)
