"""Tests of the top-level public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing attribute {name}"

    def test_key_classes_exported(self):
        for name in (
            "LLMModel",
            "Query",
            "ExactQueryEngine",
            "SQLiteDataStore",
            "OLSRegressor",
            "MARSRegressor",
            "AnalyticsSession",
            "QueryWorkloadGenerator",
        ):
            assert name in repro.__all__

    def test_exceptions_share_base_class(self):
        for name in (
            "InvalidQueryError",
            "DimensionalityMismatchError",
            "NotFittedError",
            "EmptySubspaceError",
            "StorageError",
            "CatalogError",
            "SQLSyntaxError",
            "ConfigurationError",
            "WorkloadError",
        ):
            exc = getattr(repro, name)
            assert issubclass(exc, repro.ReproError)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.queries",
            "repro.dbms",
            "repro.data",
            "repro.baselines",
            "repro.bench",
            "repro.metrics",
            "repro.eval",
        ],
    )
    def test_subpackages_importable(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__  # every subpackage documents itself

    def test_metric_shortcuts(self):
        assert repro.rmse([1.0, 2.0], [1.0, 2.0]) == 0.0
        assert repro.cod([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0
        assert repro.fvu([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0
