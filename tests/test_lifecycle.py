"""Tests for the model lifecycle subsystem (`repro.dbms.lifecycle`).

Covers the versioned model store, the observer hub, the recent-query log,
the drift window and cooldown/backoff state machine, probe-gated rollback,
atomic hot-swap under concurrent serving, and the end-to-end drift loop:
a drifting data surface plus shifted traffic drives the fallback rate up,
the manager retrains on the recorded recent queries against the refreshed
store-backed engine, and the fallback rate recovers — without restarting
any session.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.config import ModelConfig, TrainingConfig
from repro.core.model import LLMModel
from repro.data.functions import DriftingFunction, SineRidge
from repro.data.synthetic import SyntheticDataset
from repro.dbms.lifecycle import DriftPolicy, ModelManager, ModelVersionStore
from repro.dbms.observer import (
    LifecycleEvent,
    ObserverHub,
    RecordingObserver,
    observer_from_callable,
)
from repro.dbms.serving import AnalyticsService
from repro.exceptions import (
    ConfigurationError,
    LifecycleError,
    ModelPersistenceError,
    WorkloadError,
)
from repro.queries.query import Query
from repro.queries.stream import LabelledWorkload, QueryLog
from repro.queries.workload import (
    QueryWorkloadGenerator,
    RadiusDistribution,
    WorkloadSpec,
)

TABLE = "sensors"


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _linear_dataset(size: int = 3_000, seed: int = 0) -> SyntheticDataset:
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(0, 1, size=(size, 2))
    outputs = 1.0 + inputs[:, 0] + 2.0 * inputs[:, 1]
    return SyntheticDataset(inputs=inputs, outputs=outputs, name=TABLE, domain=(0.0, 1.0))


def _workload(center_low: float, center_high: float, count: int, seed: int) -> list[Query]:
    spec = WorkloadSpec(
        dimension=2,
        center_low=center_low,
        center_high=center_high,
        radius=RadiusDistribution(mean=0.1, std=0.02),
    )
    return QueryWorkloadGenerator(spec, seed=seed).generate(count)


def _train_model(engine, queries) -> LLMModel:
    workload = LabelledWorkload.from_queries(queries, engine.mean_value)
    model = LLMModel(
        dimension=2,
        # A fine quantization grows enough prototypes to genuinely cover
        # the trained region, so fallback-rate shifts measure *drift*.
        config=ModelConfig(quantization_coefficient=0.05),
        training=TrainingConfig(convergence_threshold=1e-4),
    )
    model.fit(workload)
    return model


def _q1_text(query: Query, table: str = TABLE) -> str:
    x, y = (round(float(v), 4) for v in query.center)
    return f"SELECT AVG(u) FROM {table} WITHIN {round(float(query.radius), 4)!r} OF ({x!r}, {y!r})"


# --------------------------------------------------------------------- #
# ModelVersionStore
# --------------------------------------------------------------------- #
class TestModelVersionStore:
    def _model(self, engine=None) -> LLMModel:
        from repro.dbms.executor import ExactQueryEngine

        engine = engine or ExactQueryEngine(_linear_dataset(500))
        return _train_model(engine, _workload(0.0, 1.0, 60, seed=3))

    def test_versions_are_sequential_and_loadable(self, tmp_path):
        store = ModelVersionStore(tmp_path)
        model = self._model()
        assert store.latest(TABLE) is None and store.previous(TABLE) is None
        assert store.save(TABLE, model) == 1
        assert store.save(TABLE, model) == 2
        assert store.versions(TABLE) == [1, 2]
        assert store.latest(TABLE) == 2
        assert store.previous(TABLE) == 1
        loaded = store.load(TABLE)
        assert loaded.prototype_count == model.prototype_count
        loaded_v1 = store.load(TABLE, 1)
        assert loaded_v1.dimension == model.dimension

    def test_prune_keeps_newest(self, tmp_path):
        store = ModelVersionStore(tmp_path)
        model = self._model()
        for _ in range(5):
            store.save(TABLE, model)
        removed = store.prune(TABLE, keep=2)
        assert store.versions(TABLE) == [4, 5]
        assert len(removed) == 3
        assert all(not path.exists() for path in removed)

    def test_load_without_versions_raises_typed_error(self, tmp_path):
        with pytest.raises(ModelPersistenceError):
            ModelVersionStore(tmp_path).load(TABLE)

    def test_tables_are_isolated(self, tmp_path):
        store = ModelVersionStore(tmp_path)
        model = self._model()
        store.save("a", model)
        store.save("a", model)
        store.save("b", model)
        assert store.latest("a") == 2
        assert store.latest("b") == 1


# --------------------------------------------------------------------- #
# ObserverHub / QueryLog
# --------------------------------------------------------------------- #
class TestObserverHub:
    def test_publish_reaches_subscribers_in_order(self):
        hub = ObserverHub()
        recorder = RecordingObserver()
        hub.subscribe(recorder)
        hub.publish("a.one", "t1", detail=1)
        hub.publish("a.two", "t2")
        assert recorder.kinds() == ["a.one", "a.two"]
        first = recorder.events[0]
        assert isinstance(first, LifecycleEvent)
        assert first.table == "t1" and first.payload == {"detail": 1}
        assert recorder.events[1].sequence > first.sequence

    def test_broken_observer_is_swallowed_and_counted(self):
        hub = ObserverHub()

        def boom(event):
            raise RuntimeError("sink died")

        recorder = RecordingObserver()
        hub.subscribe(observer_from_callable(boom))
        hub.subscribe(recorder)
        hub.publish("x", "t")
        assert hub.dropped_notifications == 1
        assert recorder.kinds() == ["x"]  # later observers still notified

    def test_unsubscribe(self):
        hub = ObserverHub()
        recorder = RecordingObserver()
        hub.subscribe(recorder)
        hub.subscribe(recorder)  # idempotent
        hub.unsubscribe(recorder)
        hub.publish("x")
        assert recorder.events == []

    def test_events_carry_monotonic_and_wall_timestamps(self):
        mono = iter([10.0, 11.0, 12.0])
        wall = iter([1_700_000_000.0, 1_700_000_005.0])
        hub = ObserverHub(
            clock=lambda: next(mono), wall_clock=lambda: next(wall)
        )
        event = hub.publish("retrain.completed", "t")
        assert event.monotonic == 10.0
        assert event.timestamp == 1_700_000_000.0

    def test_monotonic_ordering_survives_wall_clock_step_back(self):
        # An NTP step moves wall time backwards mid-run; the monotonic
        # stamp (and sequence) must still order the events correctly.
        mono = iter([100.0, 100.5])
        wall = iter([2_000.0, 1_500.0])  # steps back 500 s
        hub = ObserverHub(
            clock=lambda: next(mono), wall_clock=lambda: next(wall)
        )
        first = hub.publish("drift.detected", "t")
        second = hub.publish("retrain.started", "t")
        assert second.timestamp < first.timestamp  # wall clock lies
        assert second.monotonic > first.monotonic  # ordering holds
        assert second.sequence > first.sequence


class TestQueryLog:
    def test_capacity_and_eviction(self):
        log = QueryLog(capacity=3)
        queries = _workload(0.0, 1.0, 5, seed=1)
        log.record_many(queries)
        assert len(log) == 3
        assert log.total_recorded == 5
        assert log.snapshot() == list(queries[-3:])
        log.clear()
        assert len(log) == 0 and log.total_recorded == 5

    def test_invalid_capacity(self):
        with pytest.raises(WorkloadError):
            QueryLog(capacity=0)

    def test_service_records_recent_queries_per_table(self):
        from repro.dbms.executor import ExactQueryEngine

        service = AnalyticsService(
            engines={TABLE: ExactQueryEngine(_linear_dataset(500))},
            query_log_size=4,
        )
        service.execute_script(
            [
                "SELECT AVG(u) FROM sensors WITHIN 0.1 OF (0.5, 0.5)",
                "SELECT AVG(u) FROM sensors WITHIN 0.1 OF (0.6, 0.6)",
            ],
            mode="exact",
        )
        recent = service.recent_queries(TABLE)
        assert len(recent) == 2
        assert recent[0].radius == pytest.approx(0.1)
        assert service.recent_queries("elsewhere") == []


# --------------------------------------------------------------------- #
# drift window, cooldown and backoff
# --------------------------------------------------------------------- #
class TestDriftStateMachine:
    def _make(self, tmp_path, *, train_fn=None, policy=None):
        from repro.dbms.executor import ExactQueryEngine

        engine = ExactQueryEngine(_linear_dataset())
        model = _train_model(engine, _workload(0.0, 0.45, 200, seed=2))
        service = AnalyticsService(engines={TABLE: engine})
        service.swap_model(TABLE, model, version="seed")
        clock = ManualClock()
        manager = ModelManager(
            service,
            policy=policy
            or DriftPolicy(
                fallback_rate_threshold=0.3,
                min_window_statements=20,
                window_buckets=4,
                cooldown_seconds=10.0,
                backoff_multiplier=2.0,
                max_backoff_seconds=100.0,
                min_retrain_queries=20,
                probe_size=32,
            ),
            version_store=ModelVersionStore(tmp_path / "versions"),
            train_fn=train_fn,
            clock=clock,
        )
        manager.manage(TABLE)
        return service, manager, clock, model

    def _serve(self, service, center_low, center_high, count, seed):
        statements = [
            _q1_text(q) for q in _workload(center_low, center_high, count, seed)
        ]
        return service.execute_script(statements, mode="hybrid")

    def test_no_traffic_and_insufficient_traffic(self, tmp_path):
        service, manager, clock, _ = self._make(tmp_path)
        assert manager.tick() == {TABLE: "no-traffic"}
        self._serve(service, 0.1, 0.4, 5, seed=3)
        assert manager.tick() == {TABLE: "insufficient-traffic"}

    def test_healthy_traffic_never_retrains(self, tmp_path):
        service, manager, clock, model = self._make(tmp_path)
        self._serve(service, 0.05, 0.4, 40, seed=4)
        assert manager.tick() == {TABLE: "healthy"}
        assert service.model_for(TABLE) is model

    def test_drift_triggers_retrain_and_cooldown_gates_the_next(self, tmp_path):
        service, manager, clock, model = self._make(tmp_path)
        observer = RecordingObserver()
        service.observers.subscribe(observer)
        self._serve(service, 0.55, 0.95, 60, seed=5)
        assert manager.tick() == {TABLE: "retrained"}
        assert service.model_for(TABLE) is not model
        assert observer.of_kind("drift.detected")
        assert observer.of_kind("swap.committed")
        assert manager.status_for(TABLE)["retrain_count"] == 1
        # Same drifted traffic immediately after: inside the cooldown.
        self._serve(service, 0.55, 0.95, 60, seed=6)
        status = manager.tick()[TABLE]
        assert status in ("cooldown", "healthy")

    def test_failed_retrains_back_off_exponentially(self, tmp_path):
        def broken_train(table, old_model, engine, queries):
            raise RuntimeError("training infra down")

        service, manager, clock, model = self._make(tmp_path, train_fn=broken_train)
        eligibles = []
        for round_index in range(3):
            self._serve(service, 0.55, 0.95, 60, seed=10 + round_index)
            # Jump past any armed backoff so the attempt actually runs.
            clock.now = manager.status_for(TABLE)["next_eligible"] + 1.0
            assert manager.tick()[TABLE] == "failed"
            state = manager.status_for(TABLE)
            assert state["consecutive_failures"] == round_index + 1
            eligibles.append(state["next_eligible"] - clock.now)
        # cooldown 10, multiplier 2 -> waits 20, 40, 80.
        assert eligibles == [20.0, 40.0, 80.0]
        assert service.model_for(TABLE) is model  # old model kept serving

    def test_backoff_is_capped(self, tmp_path):
        def broken_train(table, old_model, engine, queries):
            raise RuntimeError("still down")

        policy = DriftPolicy(
            fallback_rate_threshold=0.3,
            min_window_statements=20,
            cooldown_seconds=10.0,
            backoff_multiplier=10.0,
            max_backoff_seconds=50.0,
            min_retrain_queries=20,
            probe_size=32,
        )
        service, manager, clock, _ = self._make(
            tmp_path, train_fn=broken_train, policy=policy
        )
        self._serve(service, 0.55, 0.95, 60, seed=20)
        assert manager.tick()[TABLE] == "failed"
        assert manager.status_for(TABLE)["next_eligible"] - clock.now == 50.0

    def test_bad_new_model_is_rolled_back(self, tmp_path):
        def bad_train(table, old_model, engine, queries):
            # "Trained" on two queries in a far corner: near-zero coverage.
            model = LLMModel(
                dimension=old_model.dimension,
                config=old_model.config,
                training=old_model.training,
            )
            corner = [
                Query(center=np.array([0.05, 0.05]), radius=0.08),
                Query(center=np.array([0.08, 0.08]), radius=0.08),
            ]
            model.fit(
                LabelledWorkload.from_queries(corner, engine.mean_value)
            )
            return model

        service, manager, clock, model = self._make(tmp_path, train_fn=bad_train)
        observer = RecordingObserver()
        service.observers.subscribe(observer)
        self._serve(service, 0.55, 0.95, 60, seed=7)
        assert manager.tick() == {TABLE: "rolled_back"}
        assert service.model_for(TABLE) is model
        assert service.model_version_for(TABLE) == "seed"
        rolled = observer.of_kind("swap.rolled_back")
        assert rolled and rolled[0].payload["new_fallback_estimate"] > 0.5
        assert manager.status_for(TABLE)["rollback_count"] == 1
        assert manager.status_for(TABLE)["consecutive_failures"] == 1

    def test_retrain_requires_enough_recent_queries(self, tmp_path):
        service, manager, clock, _ = self._make(tmp_path)
        service.query_log_for(TABLE).clear()
        assert manager.retrain(TABLE) == "failed"

    def test_unmanaged_table_raises(self, tmp_path):
        service, manager, clock, _ = self._make(tmp_path)
        with pytest.raises(LifecycleError):
            manager.retrain("nope")

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            DriftPolicy(fallback_rate_threshold=0.0)
        with pytest.raises(ConfigurationError):
            DriftPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            DriftPolicy(keep_versions=0)


# --------------------------------------------------------------------- #
# end-to-end drift recovery over a store-backed table
# --------------------------------------------------------------------- #
class TestEndToEndDriftRecovery:
    def test_fallback_rate_recovers_after_auto_retrain(self, tmp_path):
        rng = np.random.default_rng(42)
        surface = DriftingFunction(SineRidge(dimension=2), velocity=0.15)
        inputs = rng.uniform(0, 1, size=(4_000, 2))
        dataset = SyntheticDataset(
            inputs=inputs, outputs=surface(inputs), name=TABLE, domain=(0.0, 1.0)
        )
        from repro.dbms.storage import SQLiteDataStore

        with SQLiteDataStore(tmp_path / "drift.sqlite") as store:
            store.load_dataset(dataset)
            service = AnalyticsService(query_log_size=512)
            engine = service.register_table_from_store(store, TABLE)
            model = _train_model(engine, _workload(0.05, 0.45, 220, seed=1))
            service.swap_model(TABLE, model, version="v0")
            clock = ManualClock()
            manager = ModelManager(
                service,
                policy=DriftPolicy(
                    fallback_rate_threshold=0.3,
                    min_window_statements=30,
                    window_buckets=4,
                    cooldown_seconds=5.0,
                    min_retrain_queries=30,
                    probe_size=64,
                ),
                version_store=ModelVersionStore(tmp_path / "versions"),
                clock=clock,
            )
            manager.manage(TABLE, store=store)

            def serve(low, high, count, seed):
                before = service.statistics_for(TABLE).snapshot()
                statements = [_q1_text(q) for q in _workload(low, high, count, seed)]
                results = service.execute_script(statements, mode="hybrid")
                assert all(r.ok for r in results)
                after = service.statistics_for(TABLE)
                served = after.statements_executed - before.statements_executed
                fell = after.fallback_count - before.fallback_count
                return fell / served

            # Phase 1: traffic where the model was trained — healthy.
            pre_drift_rate = serve(0.05, 0.45, 60, seed=2)
            assert manager.tick()[TABLE] == "healthy"

            # Phase 2: the world moves — the surface drifts, new rows land
            # in the store, and the analysts move to the upper region.
            surface.advance(1.0)
            fresh_inputs = rng.uniform(0, 1, size=(2_000, 2))
            store.append_rows(TABLE, fresh_inputs, surface(fresh_inputs))
            drifted_rate = serve(0.55, 0.95, 80, seed=3)
            assert drifted_rate > 0.5  # the stale model is lost out here

            # Phase 3: the manager notices and retrains on recent traffic.
            assert manager.tick()[TABLE] == "retrained"
            assert service.model_for(TABLE) is not model
            assert manager.version_store.latest(TABLE) == 1
            # The refreshed engine serves the appended rows too.
            assert service.engine_for(TABLE) is not engine

            # Phase 4: the same drifted traffic is now covered again.
            recovered_rate = serve(0.55, 0.95, 80, seed=4)
            assert recovered_rate <= max(1.5 * pre_drift_rate, 0.1)
            assert manager.tick()[TABLE] in ("healthy", "cooldown", "no-traffic")


# --------------------------------------------------------------------- #
# hot-swap atomicity under concurrent serving
# --------------------------------------------------------------------- #
class TestConcurrentHotSwap:
    def test_sessions_keep_serving_through_repeated_swaps(self):
        from repro.dbms.executor import ExactQueryEngine

        engine = ExactQueryEngine(_linear_dataset())
        model_a = _train_model(engine, _workload(0.0, 1.0, 150, seed=1))
        model_b = _train_model(engine, _workload(0.0, 1.0, 150, seed=2))
        service = AnalyticsService(engines={TABLE: engine})
        service.swap_model(TABLE, model_a, version="a")
        statements = [_q1_text(q) for q in _workload(0.1, 0.9, 20, seed=9)]
        errors: list[BaseException] = []
        stop = threading.Event()

        def serve_loop():
            try:
                while not stop.is_set():
                    results = service.execute_script(statements, mode="hybrid")
                    for result in results:
                        assert result.ok, result.error
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [threading.Thread(target=serve_loop) for _ in range(4)]
        for worker in workers:
            worker.start()
        for index in range(60):
            model, version = (
                (model_b, "b") if index % 2 == 0 else (model_a, "a")
            )
            service.swap_model(TABLE, model, version=version)
        stop.set()
        for worker in workers:
            worker.join(timeout=30)
        assert not errors
        assert service.model_for(TABLE) in (model_a, model_b)
        assert service.statistics_for(TABLE).error_count == 0


# --------------------------------------------------------------------- #
# LifecycleScheduler
# --------------------------------------------------------------------- #
class TestLifecycleScheduler:
    def _manager(self) -> ModelManager:
        from repro.dbms.executor import ExactQueryEngine

        engine = ExactQueryEngine(_linear_dataset(500))
        model = _train_model(engine, _workload(0.0, 1.0, 60, seed=1))
        service = AnalyticsService(engines={TABLE: engine})
        service.swap_model(TABLE, model, version="v1")
        manager = ModelManager(service)
        manager.manage(TABLE)
        return manager

    def test_interval_must_be_positive(self):
        from repro.dbms.lifecycle import LifecycleScheduler

        with pytest.raises(ConfigurationError):
            LifecycleScheduler(self._manager(), interval_seconds=0.0)

    def test_start_stop_and_ticks(self):
        from repro.dbms.lifecycle import LifecycleScheduler

        scheduler = LifecycleScheduler(
            self._manager(), interval_seconds=0.005
        )
        assert not scheduler.running
        with scheduler:
            assert scheduler.running
            deadline = threading.Event()
            for _ in range(200):  # up to ~2 s for the first few ticks
                if scheduler.tick_count >= 2:
                    break
                deadline.wait(0.01)
        assert not scheduler.running
        assert scheduler.tick_count >= 2
        assert scheduler.last_statuses.get(TABLE) in (
            "no-traffic",
            "insufficient-traffic",
            "healthy",
        )
        # Idempotent stop; restart works after a stop.
        scheduler.stop()
        scheduler.start()
        assert scheduler.running
        scheduler.stop()
        assert not scheduler.running

    def test_start_is_idempotent_while_running(self):
        from repro.dbms.lifecycle import LifecycleScheduler

        scheduler = LifecycleScheduler(self._manager(), interval_seconds=0.01)
        try:
            assert scheduler.start() is scheduler
            thread_before = scheduler._thread
            scheduler.start()
            assert scheduler._thread is thread_before
        finally:
            scheduler.stop()

    def test_exception_containment_publishes_and_keeps_running(self):
        from repro.dbms.lifecycle import LifecycleScheduler

        manager = self._manager()
        recorder = RecordingObserver()
        manager.service.observers.subscribe(recorder)
        boom = {"count": 0}
        original_tick = manager.tick

        def flaky_tick(now=None):
            boom["count"] += 1
            if boom["count"] <= 2:
                raise RuntimeError("injected tick failure")
            return original_tick(now)

        manager.tick = flaky_tick
        scheduler = LifecycleScheduler(manager, interval_seconds=0.005)
        with scheduler:
            for _ in range(400):
                if scheduler.tick_count >= 1:
                    break
                threading.Event().wait(0.01)
        # Both failures were contained (loop survived them to tick cleanly)
        # and surfaced as scheduler.error events.
        assert scheduler.error_count == 2
        assert scheduler.tick_count >= 1
        errors = recorder.of_kind("scheduler.error")
        assert len(errors) == 2
        assert "injected tick failure" in str(errors[0].payload["error"])


# --------------------------------------------------------------------- #
# Answer-cache correctness under hot-swap (concurrent front)
# --------------------------------------------------------------------- #
class TestCacheUnderHotSwap:
    def test_no_stale_cached_answer_across_swap_and_rollback(self):
        """Readers hammer the cached front while a swapper flips models.

        The invariant under test: a statement served *after* a swap
        commits must answer from the swapped-in model — never from a
        cached answer of the previous version.  Swapping back to a
        previously-live version marker (``"a"``) is exactly the rollback
        shape where version-only cache keys would go stale; the registry
        epoch in the key is what must keep it correct.
        """
        from repro.dbms.concurrent import (
            ConcurrencyPolicy,
            ConcurrentAnalyticsService,
        )
        from repro.dbms.executor import ExactQueryEngine

        engine = ExactQueryEngine(_linear_dataset())
        model_a = _train_model(engine, _workload(0.0, 1.0, 150, seed=1))
        model_b = _train_model(engine, _workload(0.0, 1.0, 150, seed=2))
        service = AnalyticsService(engines={TABLE: engine})
        service.swap_model(TABLE, model_a, version="a")
        queries = _workload(0.2, 0.8, 12, seed=9)
        statements = [_q1_text(q) for q in queries]
        # Per-model ground truth through a plain sequential service.
        expected: dict[str, list[float]] = {}
        for version, model in (("a", model_a), ("b", model_b)):
            probe = AnalyticsService(engines={TABLE: engine})
            probe.swap_model(TABLE, model, version=version)
            expected[version] = [
                r.value for r in probe.execute_script(statements, mode="model")
            ]
        # The two models must genuinely disagree somewhere, or staleness
        # would be invisible.
        assert expected["a"] != expected["b"]

        front = ConcurrentAnalyticsService(
            service,
            policy=ConcurrencyPolicy(coalesce_window_seconds=0.001),
        )
        stop = threading.Event()
        reader_errors: list[BaseException] = []

        def reader_loop():
            try:
                while not stop.is_set():
                    results = front.execute_script(statements, mode="model")
                    for result, value_a, value_b in zip(
                        results, expected["a"], expected["b"]
                    ):
                        # Any answer must be one model's answer, whole.
                        assert result.ok, result.error
                        assert result.value in (value_a, value_b)
            except BaseException as exc:  # pragma: no cover - failure path
                reader_errors.append(exc)

        readers = [threading.Thread(target=reader_loop) for _ in range(3)]
        try:
            for reader in readers:
                reader.start()
            for index in range(30):
                version = "b" if index % 2 == 0 else "a"
                model = model_b if version == "b" else model_a
                front.swap_model(TABLE, model, version=version)
                # The post-swap check: this thread is the only swapper, so
                # the current model is pinned until it swaps again — every
                # answer (cached or not) must be the swapped-in model's.
                results = front.execute_script(statements, mode="model")
                for result, want in zip(results, expected[version]):
                    assert result.ok, result.error
                    assert result.value == want, (
                        f"stale answer after swap to {version!r}"
                    )
        finally:
            stop.set()
            for reader in readers:
                reader.join(timeout=30)
            front.close()
        assert not reader_errors
