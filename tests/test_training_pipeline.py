"""Equivalence and behaviour tests of the pipelined training loop.

The chunked, prefetched :meth:`~repro.core.training.StreamingTrainer.train`
must be *bit-for-bit* identical to the sequential per-query loop in its
default ``within_chunk="strict"`` mode: same winner sequence, same
prototype matrix, same criterion trajectory, same
``TrainingCostBreakdown.pairs_*`` counts.  The sequential reference labels
through ``execute_q1_batch([q])`` per query (batched Q1 statistics are
batch-composition independent, so this is the same numerics at every chunk
size); the suite sweeps seeds x data layouts x chunk sizes x prefetch, the
engine selectors, the documented stale-winners deviation, and the
skipped-query engine-time attribution bugfix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig, TrainingConfig
from repro.core.model import LLMModel
from repro.core.sgd import FusedTrainingKernel
from repro.core.training import StreamingTrainer
from repro.data.synthetic import SyntheticDataset
from repro.dbms.executor import ExactQueryEngine
from repro.dbms.sharding import ShardedQueryEngine
from repro.exceptions import ConfigurationError, EmptySubspaceError
from repro.queries.query import Query
from repro.queries.workload import (
    QueryWorkloadGenerator,
    RadiusDistribution,
    WorkloadSpec,
)

SEEDS = (0, 1, 2)
LAYOUTS = ("uniform", "clustered", "wave")


def _make_dataset(layout: str, seed: int, size: int = 3_000) -> SyntheticDataset:
    rng = np.random.default_rng(seed * 7919 + 13)
    if layout == "uniform":
        inputs = rng.uniform(0.0, 1.0, size=(size, 2))
        outputs = inputs @ np.array([1.5, -0.5]) + 0.05 * rng.normal(size=size)
    elif layout == "clustered":
        anchors = rng.uniform(0.2, 0.8, size=(3, 2))
        inputs = anchors[rng.integers(0, 3, size=size)] + 0.05 * rng.normal(
            size=(size, 2)
        )
        outputs = np.cos(3.0 * inputs[:, 0]) + inputs[:, 1] ** 2
    else:
        inputs = rng.uniform(0.0, 1.0, size=(size, 2))
        outputs = np.sin(2 * np.pi * inputs[:, 0]) + inputs[:, 1]
    return SyntheticDataset(
        inputs=inputs, outputs=outputs, name=f"tp_{layout}_{seed}", domain=(0.0, 1.0)
    )


def _make_queries(seed: int, count: int = 220) -> list[Query]:
    spec = WorkloadSpec(dimension=2, radius=RadiusDistribution(mean=0.12, std=0.03))
    queries = QueryWorkloadGenerator(spec, seed=seed).generate(count)
    # Sprinkle empty subspaces so skip accounting is part of every case.
    for position in (5, count // 2, count - 3):
        if 0 <= position < count:
            queries[position] = Query(
                center=np.array([6.0 + position, 6.0]), radius=0.01
            )
    return queries


def _fresh_model(coefficient: float = 0.1, gamma: float = 1e-9) -> LLMModel:
    return LLMModel(
        dimension=2,
        config=ModelConfig(quantization_coefficient=coefficient),
        training=TrainingConfig(convergence_threshold=gamma),
    )


def _state(model: LLMModel) -> tuple:
    """Full trainable state: prototypes, slopes, scalars, winner trace."""
    prototypes, slopes, scalars = model._quantizer.parameters.training_views()
    trace = [
        (record.winner_index, record.grew, record.criterion)
        for record in model.convergence_tracker.history
    ]
    return (
        prototypes.copy(),
        slopes.copy(),
        scalars.copy(),
        trace,
    )


def _assert_same_state(a: tuple, b: tuple, context: str) -> None:
    assert np.array_equal(a[0], b[0]), f"{context}: prototypes diverge"
    assert np.array_equal(a[1], b[1]), f"{context}: slopes diverge"
    assert np.array_equal(a[2], b[2]), f"{context}: scalars diverge"
    assert a[3] == b[3], f"{context}: winner/criterion trace diverges"


class TestChunkedEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_chunked_and_prefetched_match_sequential_bit_for_bit(
        self, layout: str, seed: int
    ):
        engine = ExactQueryEngine(_make_dataset(layout, seed))
        queries = _make_queries(seed)

        reference_model = _fresh_model()
        reference = StreamingTrainer(reference_model, engine).train(
            queries, batch_size=1
        )
        reference_state = _state(reference_model)

        for kwargs in (
            dict(batch_size=16),
            dict(batch_size=64, prefetch=True),
            dict(batch_size=1_000),
        ):
            model = _fresh_model()
            breakdown = StreamingTrainer(model, engine).train(queries, **kwargs)
            context = f"{layout}/seed{seed}/{kwargs}"
            _assert_same_state(_state(model), reference_state, context)
            assert breakdown.pairs_processed == reference.pairs_processed, context
            assert breakdown.pairs_skipped == reference.pairs_skipped, context
            assert (
                breakdown.criterion_trajectory == reference.criterion_trajectory
            ), context

    def test_convergence_mid_chunk_stops_without_consuming_rest(self):
        engine = ExactQueryEngine(_make_dataset("wave", 0))
        queries = _make_queries(3, count=300)
        # A coarse quantizer with a permissive threshold converges quickly.
        config = ModelConfig(quantization_coefficient=0.9)
        training = TrainingConfig(
            convergence_threshold=0.5, min_steps=5, convergence_window=5
        )
        sequential = LLMModel(dimension=2, config=config, training=training)
        ref = StreamingTrainer(sequential, engine).train(queries, batch_size=1)
        assert ref.converged

        chunked = LLMModel(dimension=2, config=config, training=training)
        breakdown = StreamingTrainer(chunked, engine).train(queries, batch_size=64)
        assert breakdown.converged
        assert breakdown.pairs_processed == ref.pairs_processed
        assert breakdown.pairs_skipped == ref.pairs_skipped
        assert breakdown.criterion_trajectory == ref.criterion_trajectory
        assert np.array_equal(
            chunked.prototype_matrix(), sequential.prototype_matrix()
        )
        # The chunked loop never pulled past the in-flight chunk.
        assert breakdown.chunks_executed <= (ref.pairs_processed // 64) + 1

    def test_prefetched_convergence_drains_inflight_chunk(self):
        engine = ExactQueryEngine(_make_dataset("wave", 1))
        queries = _make_queries(4, count=300)
        config = ModelConfig(quantization_coefficient=0.9)
        training = TrainingConfig(
            convergence_threshold=0.5, min_steps=5, convergence_window=5
        )
        model = LLMModel(dimension=2, config=config, training=training)
        breakdown = StreamingTrainer(model, engine).train(
            queries, batch_size=32, prefetch=True
        )
        assert breakdown.converged
        # The drained in-flight chunk is engine time the run actually spent.
        assert breakdown.query_execution_seconds > 0.0


class TestEngineSelectors:
    def test_sharded_and_auto_routing_produce_identical_models(self):
        dataset = _make_dataset("uniform", 2)
        queries = _make_queries(5)
        single = ExactQueryEngine(dataset)
        reference_model = _fresh_model()
        StreamingTrainer(reference_model, single).train(queries, batch_size=40)

        with ShardedQueryEngine(
            dataset, num_shards=3, backend="serial", route="scan"
        ) as sharded:
            previous_route = sharded.route
            model = _fresh_model()
            StreamingTrainer(model, sharded).train(
                queries, batch_size=40, engine="auto"
            )
            # The route override is call-scoped: the policy never changes.
            assert sharded.route == previous_route
        # Sharded merge order differs from the single engine's summation, so
        # the equality is the differential harness's 1e-12 envelope, not
        # bitwise.
        assert model.prototype_count == reference_model.prototype_count
        np.testing.assert_allclose(
            model.prototype_matrix(),
            reference_model.prototype_matrix(),
            rtol=1e-9,
            atol=1e-12,
        )

    def test_frozen_model_consumes_no_input_with_or_without_prefetch(self):
        engine = ExactQueryEngine(_make_dataset("uniform", 1))
        queries = _make_queries(2, count=60)
        for prefetch in (False, True):
            model = _fresh_model()
            model._frozen = True
            stream = iter(queries)
            breakdown = StreamingTrainer(model, engine).train(
                stream, batch_size=16, prefetch=prefetch
            )
            assert breakdown.pairs_processed == 0
            assert breakdown.chunks_executed == 0
            # The shared iterator was not advanced by a single query.
            assert next(stream) is queries[0]

    def test_within_chunk_is_validated_before_any_engine_work(self):
        engine = ExactQueryEngine(_make_dataset("uniform", 1))
        trainer = StreamingTrainer(_fresh_model(), engine)
        stream = iter(_make_queries(2, count=20))
        with pytest.raises(ConfigurationError):
            trainer.train(stream, within_chunk="stale")
        assert next(stream, None) is not None  # nothing was pulled

    def test_explicit_engine_instance_and_bad_selector(self):
        dataset = _make_dataset("uniform", 0)
        queries = _make_queries(6, count=40)
        trainer = StreamingTrainer(_fresh_model(), ExactQueryEngine(dataset))
        other = ExactQueryEngine(_make_dataset("wave", 0))
        breakdown = trainer.train(queries, engine=other)
        assert breakdown.pairs_processed > 0
        with pytest.raises(ValueError):
            trainer.train(queries, engine="warp-speed")
        with pytest.raises(ValueError):
            trainer.train(queries, batch_size=0)


class TestCostAccounting:
    def test_skipped_queries_engine_time_is_attributed(self):
        # Seed bug: queries raising EmptySubspaceError contributed engine
        # time that was dropped before the `continue`, undercounting
        # query_execution_seconds by exactly the skipped queries' cost.
        engine = ExactQueryEngine(_make_dataset("uniform", 1))
        outside = [
            Query(center=np.array([9.0 + i, 9.0]), radius=0.01) for i in range(5)
        ]
        breakdown = StreamingTrainer(_fresh_model(), engine).train(outside)
        assert breakdown.pairs_skipped == 5
        assert breakdown.pairs_processed == 0
        assert breakdown.query_execution_seconds > 0.0
        assert breakdown.chunks_executed == 1

    def test_raise_mode_surfaces_empty_subspace_after_preceding_pairs(self):
        engine = ExactQueryEngine(_make_dataset("uniform", 2))
        queries = _make_queries(7, count=40)
        model = _fresh_model()
        trainer = StreamingTrainer(model, engine, skip_empty_subspaces=False)
        with pytest.raises(EmptySubspaceError):
            trainer.train(queries, batch_size=16)
        # The pairs before the first empty query were consumed (the
        # sequential loop's model state at the raise point).
        assert model.steps == 5


class TestStaleWinnersMode:
    def test_stale_mode_trains_a_usable_model_and_is_documentedly_different(self):
        engine = ExactQueryEngine(_make_dataset("wave", 3))
        queries = _make_queries(8)
        strict = _fresh_model()
        StreamingTrainer(strict, engine).train(queries, batch_size=64)
        stale = _fresh_model()
        breakdown = StreamingTrainer(stale, engine).train(
            queries, batch_size=64, within_chunk="stale-winners"
        )
        assert breakdown.pairs_processed > 0
        assert stale.is_fitted
        # Same quantization regime even though sequencing is relaxed.
        assert (
            abs(stale.prototype_count - strict.prototype_count)
            <= max(3, strict.prototype_count // 2)
        )
        probe = Query(center=np.array([0.5, 0.5]), radius=0.15)
        assert np.isfinite(stale.predict_mean(probe))

    def test_stale_mode_with_batch_size_one_matches_strict(self):
        # Chunks of one pair have no staleness: both modes reduce to the
        # same per-pair sequence.
        engine = ExactQueryEngine(_make_dataset("uniform", 3))
        queries = _make_queries(9, count=60)
        strict = _fresh_model()
        StreamingTrainer(strict, engine).train(queries, batch_size=1)
        stale = _fresh_model()
        StreamingTrainer(stale, engine).train(
            queries, batch_size=1, within_chunk="stale-winners"
        )
        _assert_same_state(_state(stale), _state(strict), "bs1 stale==strict")

    def test_unknown_mode_rejected(self):
        engine = ExactQueryEngine(_make_dataset("uniform", 0))
        model = _fresh_model()
        with pytest.raises(ConfigurationError):
            model.partial_fit_batch(
                _make_queries(0, count=4), [0.0] * 4, within_chunk="psychic"
            )


class TestPartialFitBatch:
    def test_matches_partial_fit_loop_bitwise(self):
        rng = np.random.default_rng(11)
        pairs = []
        for _ in range(200):
            center = rng.uniform(0, 1, size=2)
            pairs.append(
                (
                    Query(center=center, radius=float(rng.uniform(0.05, 0.2))),
                    float(center.sum()),
                )
            )
        sequential = _fresh_model()
        for query, answer in pairs:
            sequential.partial_fit(query, answer)
        batched = _fresh_model()
        records = batched.partial_fit_batch(
            [query for query, _ in pairs], [answer for _, answer in pairs]
        )
        assert len(records) == len(pairs)
        _assert_same_state(_state(batched), _state(sequential), "partial_fit_batch")
        assert batched.steps == sequential.steps

    def test_validates_lengths_and_dimensions(self):
        model = _fresh_model()
        queries = _make_queries(1, count=4)
        with pytest.raises(ValueError):
            model.partial_fit_batch(queries, [0.0] * 3)
        bad = [Query(center=np.array([0.1, 0.2, 0.3]), radius=0.1)]
        with pytest.raises(Exception):
            model.partial_fit_batch(bad, [0.0])

    def test_frozen_model_consumes_nothing(self):
        model = _fresh_model()
        model._frozen = True
        queries = _make_queries(2, count=4)
        assert model.partial_fit_batch(queries, [0.0] * 4) == []


class TestWinnerPruningIndex:
    def test_pruned_winner_search_is_bitwise_identical(self):
        # Force the pruning index on from the first prototype: the pruned
        # kernel must replicate the dense scan exactly, across growth,
        # prototype motion (index slack) and rebuilds.
        rng = np.random.default_rng(5)
        pairs = []
        for _ in range(400):
            center = rng.uniform(0, 1, size=2)
            pairs.append(
                (
                    Query(center=center, radius=float(rng.uniform(0.05, 0.2))),
                    float(np.sin(center[0]) + center[1]),
                )
            )
        dense = _fresh_model(coefficient=0.05)
        for query, answer in pairs:
            dense.partial_fit(query, answer)

        pruned = _fresh_model(coefficient=0.05)
        pruned._kernel = FusedTrainingKernel(
            pruned._quantizer,
            pruned._schedule,
            pruned._tracker,
            prune_threshold=1,
        )
        for query, answer in pairs:
            pruned.partial_fit(query, answer)
        assert pruned._kernel._index is not None  # the index really ran
        _assert_same_state(_state(pruned), _state(dense), "pruned winner search")
