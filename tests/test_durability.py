"""Tests for the durability subsystem (`repro.dbms.durability`).

Covers the state journal's atomic-append / torn-tail contract, checkpoint
manifests (atomicity, checksums, rotation, pruning, version pinning), the
recovery manager's checkpoint-by-checkpoint fallback on every corruption
mode, journal replay of swaps and registrations, restored drift windows
and cooldowns, the kill-and-restart drill over the full stack, graceful
shutdown ordering, and — the paper's closed loop across a process
boundary — drift detected before a crash leading to a retrain *after*
restart.  Under ``REPRO_FAULT_SOAK=1`` the crash matrix is soaked across
every durability fault point and corruption mode.
"""

from __future__ import annotations

import json
import os
import threading

import numpy as np
import pytest

from repro.config import ModelConfig, TrainingConfig
from repro.core.model import LLMModel
from repro.data.synthetic import SyntheticDataset
from repro.dbms.concurrent import ConcurrencyPolicy, ConcurrentAnalyticsService
from repro.dbms.durability import (
    CHECKPOINT_FORMAT_VERSION,
    RecoveryManager,
    ServiceCheckpointer,
    StateJournal,
    checkpoint_versions,
)
from repro.dbms.lifecycle import (
    DriftPolicy,
    LifecycleScheduler,
    ModelManager,
    ModelVersionStore,
)
from repro.dbms.serving import AnalyticsService
from repro.dbms.storage import SQLiteDataStore
from repro.exceptions import (
    CheckpointCorruptError,
    ConfigurationError,
    InjectedFaultError,
)
from repro.queries.stream import LabelledWorkload
from repro.queries.workload import (
    QueryWorkloadGenerator,
    RadiusDistribution,
    WorkloadSpec,
)
from repro.testing import (
    FaultInjector,
    corrupt_checkpoint_file,
    corrupt_model_file,
    truncate_journal,
)
from repro.testing.faults import CHECKPOINT_CORRUPTION_MODES

TABLE = "sensors"

_SOAK = os.environ.get("REPRO_FAULT_SOAK", "") not in ("", "0")


def _dataset(size: int = 2_000, seed: int = 0) -> SyntheticDataset:
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(0, 1, size=(size, 2))
    outputs = 1.0 + inputs[:, 0] + 2.0 * inputs[:, 1]
    return SyntheticDataset(
        inputs=inputs, outputs=outputs, name=TABLE, domain=(0.0, 1.0)
    )


def _workload(low: float, high: float, count: int, seed: int):
    spec = WorkloadSpec(
        dimension=2,
        center_low=low,
        center_high=high,
        radius=RadiusDistribution(mean=0.12, std=0.02),
    )
    return QueryWorkloadGenerator(spec, seed=seed).generate(count)


def _train_model(engine, queries) -> LLMModel:
    workload = LabelledWorkload.from_queries(queries, engine.mean_value)
    model = LLMModel(
        dimension=2,
        config=ModelConfig(quantization_coefficient=0.1),
        training=TrainingConfig(convergence_threshold=1e-4),
    )
    model.fit(workload)
    return model


def _q1(query, table: str = TABLE) -> str:
    x, y = (round(float(v), 4) for v in query.center)
    radius = round(float(query.radius), 4)
    return f"SELECT AVG(u) FROM {table} WITHIN {radius!r} OF ({x!r}, {y!r})"


@pytest.fixture()
def stack(tmp_path):
    """A served stack over a disk-backed store, with lifecycle management."""
    store = SQLiteDataStore(tmp_path / "data.db")
    store.load_dataset(_dataset(), TABLE)
    service = AnalyticsService()
    service.register_table_from_store(store, TABLE)
    engine = service.engine_for(TABLE)
    queries = _workload(0.0, 1.0, 80, seed=1)
    model = _train_model(engine, queries)
    version_store = ModelVersionStore(tmp_path / "versions")
    version = version_store.save(TABLE, model)
    service.swap_model(TABLE, model, version=version)
    manager = ModelManager(
        service,
        policy=DriftPolicy(min_window_statements=10, min_retrain_queries=8),
        version_store=version_store,
    )
    manager.manage(TABLE, store=store, store_table=TABLE)
    yield {
        "store": store,
        "service": service,
        "engine": engine,
        "model": model,
        "queries": queries,
        "version_store": version_store,
        "manager": manager,
        "dir": tmp_path / "ckpt",
    }
    store.close()


def _serve(service, queries, count: int) -> None:
    for query in queries[:count]:
        service.execute(_q1(query))


# --------------------------------------------------------------------- #
# StateJournal
# --------------------------------------------------------------------- #
class TestStateJournal:
    def test_append_and_load_round_trip(self, tmp_path):
        journal = StateJournal(tmp_path / "j.jsonl")
        for i in range(5):
            journal.append({"event": "model.swapped", "version": i})
        entries, dropped = StateJournal.entries(journal.path)
        assert dropped == 0
        assert [e["version"] for e in entries] == list(range(5))
        assert journal.appended == 5

    def test_missing_journal_is_empty(self, tmp_path):
        entries, dropped = StateJournal.entries(tmp_path / "absent.jsonl")
        assert entries == [] and dropped == 0

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        journal = StateJournal(tmp_path / "j.jsonl")
        for i in range(4):
            journal.append({"event": "model.swapped", "version": i})
        truncate_journal(journal.path, keep_lines=2, tear_bytes=7)
        entries, dropped = StateJournal.entries(journal.path)
        assert [e["version"] for e in entries] == [0, 1]
        assert dropped == 1

    def test_concurrent_appenders_never_tear_lines(self, tmp_path):
        journal = StateJournal(tmp_path / "j.jsonl")
        errors: list[BaseException] = []

        def writer(worker: int) -> None:
            try:
                for i in range(50):
                    journal.append({"worker": worker, "i": i, "pad": "x" * 200})
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        entries, dropped = StateJournal.entries(journal.path)
        assert dropped == 0
        assert len(entries) == 300
        seen = {(e["worker"], e["i"]) for e in entries}
        assert len(seen) == 300


# --------------------------------------------------------------------- #
# ServiceCheckpointer
# --------------------------------------------------------------------- #
class TestServiceCheckpointer:
    def test_checkpoint_writes_versioned_checksummed_manifest(self, stack):
        _serve(stack["service"], stack["queries"], 10)
        ckpt = ServiceCheckpointer(
            stack["service"],
            stack["dir"],
            manager=stack["manager"],
            version_store=stack["version_store"],
        )
        path = ckpt.checkpoint()
        assert path.name == "checkpoint.v0001.json"
        manifest = json.loads(path.read_text())
        assert manifest["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert "checksum" in manifest
        entry = manifest["payload"]["tables"][TABLE]
        assert entry["model_version"] == 1
        assert entry["registry_epoch"] >= 2
        assert entry["engine_binding"][1] == TABLE
        assert entry["query_log"]["queries"]
        assert entry["statistics"]["statements_executed"] == 10
        assert entry["lifecycle"] is not None

    def test_checkpoint_versions_advance_and_old_ones_prune(self, stack):
        ckpt = ServiceCheckpointer(
            stack["service"], stack["dir"], keep_checkpoints=2
        )
        for _ in range(5):
            ckpt.checkpoint()
        assert checkpoint_versions(stack["dir"]) == [4, 5]
        # journals of pruned manifests go with them (journal files are
        # created lazily on first append, so only assert none is stale)
        for path in stack["dir"].glob("journal.*"):
            assert path.name in ("journal.v0004.jsonl", "journal.v0005.jsonl")

    def test_unversioned_model_is_saved_into_checkpoint_dir(self, tmp_path):
        store = SQLiteDataStore(tmp_path / "data.db")
        store.load_dataset(_dataset(500), TABLE)
        service = AnalyticsService()
        service.register_table_from_store(store, TABLE)
        model = _train_model(
            service.engine_for(TABLE), _workload(0.0, 1.0, 40, seed=2)
        )
        service.register_model(TABLE, model)  # no version store, no marker
        ckpt = ServiceCheckpointer(service, tmp_path / "ckpt")
        path = ckpt.checkpoint()
        entry = json.loads(path.read_text())["payload"]["tables"][TABLE]
        assert entry["model_file"] is not None
        assert (tmp_path / "ckpt" / "models") in list(
            (tmp_path / "ckpt" / "models").parents
        ) or entry["model_file"].startswith(str(tmp_path / "ckpt"))
        store.close()

    def test_mid_checkpoint_crash_leaves_no_manifest(self, stack):
        injector = FaultInjector()
        ckpt = ServiceCheckpointer(
            stack["service"], stack["dir"], injector=injector
        )
        ckpt.checkpoint()
        injector.arm("durability.mid_checkpoint", error=InjectedFaultError)
        with pytest.raises(InjectedFaultError):
            ckpt.checkpoint()
        # the torn attempt left neither a manifest nor a staging file
        assert checkpoint_versions(stack["dir"]) == [1]
        assert not list(stack["dir"].glob("*.tmp"))
        # and the next attempt proceeds normally; the torn attempt did
        # not burn a version number
        ckpt.checkpoint()
        assert checkpoint_versions(stack["dir"]) == [1, 2]

    def test_pre_checkpoint_crash_changes_nothing(self, stack):
        injector = FaultInjector()
        ckpt = ServiceCheckpointer(
            stack["service"], stack["dir"], injector=injector
        )
        injector.arm("durability.pre_checkpoint", error=InjectedFaultError)
        with pytest.raises(InjectedFaultError):
            ckpt.checkpoint()
        assert checkpoint_versions(stack["dir"]) == []

    def test_swap_between_checkpoints_lands_in_journal(self, stack):
        ckpt = ServiceCheckpointer(
            stack["service"],
            stack["dir"],
            version_store=stack["version_store"],
        )
        ckpt.checkpoint()
        v2 = stack["version_store"].save(TABLE, stack["model"])
        stack["service"].swap_model(TABLE, stack["model"], version=v2)
        entries, dropped = StateJournal.entries(
            stack["dir"] / "journal.v0001.jsonl"
        )
        assert dropped == 0
        swaps = [e for e in entries if e["event"] == "model.swapped"]
        assert swaps and swaps[-1]["version"] == v2
        assert swaps[-1]["model_file"].endswith(f"{TABLE}.v{v2:04d}.json")

    def test_journal_append_fault_does_not_break_serving(self, stack):
        injector = FaultInjector()
        ckpt = ServiceCheckpointer(
            stack["service"], stack["dir"], injector=injector
        )
        ckpt.checkpoint()
        injector.arm("durability.journal_append", error=InjectedFaultError)
        # the swap that triggers the journal append must still succeed
        stack["service"].swap_model(TABLE, stack["model"], version="mem-x")
        assert stack["service"].model_version_for(TABLE) == "mem-x"
        assert isinstance(ckpt.last_error, InjectedFaultError)
        _serve(stack["service"], stack["queries"], 3)

    def test_checkpoint_pins_referenced_versions_against_pruning(self, stack):
        version_store = stack["version_store"]
        service = stack["service"]
        ckpt = ServiceCheckpointer(
            service,
            stack["dir"],
            version_store=version_store,
            keep_checkpoints=1,
        )
        ckpt.checkpoint()  # manifest references version 1
        assert version_store.pinned(TABLE) == frozenset({1})
        # lifecycle-style churn: many new versions + keep_versions pruning
        for _ in range(4):
            version_store.save(TABLE, stack["model"])
        version_store.prune(TABLE, 2)
        # keep=2 would normally delete v1..v3; the manifest-referenced v1
        # must survive so recovery can still load it
        assert 1 in version_store.versions(TABLE)
        assert version_store.path_for(TABLE, 1).exists()
        assert 2 not in version_store.versions(TABLE)

    def test_periodic_thread_checkpoints_and_stops(self, stack):
        ckpt = ServiceCheckpointer(
            stack["service"], stack["dir"], interval_seconds=0.02
        )
        ckpt.start()
        deadline = 100
        while ckpt.checkpoint_count == 0 and deadline:
            deadline -= 1
            threading.Event().wait(0.02)
        ckpt.stop()
        assert ckpt.checkpoint_count >= 1
        assert not ckpt.running
        assert checkpoint_versions(stack["dir"])

    def test_interval_validation(self, stack):
        with pytest.raises(ConfigurationError):
            ServiceCheckpointer(
                stack["service"], stack["dir"], interval_seconds=0.0
            )
        with pytest.raises(ConfigurationError):
            ServiceCheckpointer(
                stack["service"], stack["dir"], keep_checkpoints=0
            )
        ckpt = ServiceCheckpointer(stack["service"], stack["dir"])
        with pytest.raises(ConfigurationError):
            ckpt.start()

    def test_resuming_over_existing_directory_continues_versions(self, stack):
        ckpt1 = ServiceCheckpointer(stack["service"], stack["dir"])
        ckpt1.checkpoint()
        ckpt1.checkpoint()
        stack["service"].observers.unsubscribe(ckpt1._observer)
        ckpt2 = ServiceCheckpointer(stack["service"], stack["dir"])
        assert ckpt2.last_checkpoint_version == 2
        path = ckpt2.checkpoint()
        assert path.name == "checkpoint.v0003.json"


# --------------------------------------------------------------------- #
# RecoveryManager
# --------------------------------------------------------------------- #
class TestRecovery:
    def _checkpoint(self, stack, **kwargs) -> ServiceCheckpointer:
        ckpt = ServiceCheckpointer(
            stack["service"],
            stack["dir"],
            manager=stack["manager"],
            version_store=stack["version_store"],
            **kwargs,
        )
        ckpt.checkpoint()
        return ckpt

    def test_kill_and_restart_drill(self, stack):
        """The acceptance drill: kill -9 after a checkpoint, restart, verify."""
        service = stack["service"]
        _serve(service, stack["queries"], 20)
        stack["manager"].tick()
        self._checkpoint(stack)
        pre_version = service.model_version_for(TABLE)
        pre_epoch = service.registry_epoch_for(TABLE)
        pre_log = len(service.recent_queries(TABLE))
        # "kill -9": nothing is flushed or closed; a new process recovers
        recovered = RecoveryManager(stack["dir"]).recover()
        restored = recovered.service
        assert restored is not service
        assert restored.model_version_for(TABLE) == pre_version
        assert restored.registry_epoch_for(TABLE) >= pre_epoch
        restored_log = restored.recent_queries(TABLE)
        assert len(restored_log) == pre_log > 0
        assert restored.statistics_for(TABLE).statements_executed == 20
        # the restored registry serves — engine rebuilt from store binding
        value = restored.execute(_q1(stack["queries"][0]))
        assert np.isfinite(value)
        for opened in recovered.stores.values():
            opened.close()

    def test_journal_replay_restores_post_checkpoint_swap(self, stack):
        self._checkpoint(stack)
        v2 = stack["version_store"].save(TABLE, stack["model"])
        stack["service"].swap_model(TABLE, stack["model"], version=v2)
        recovered = RecoveryManager(stack["dir"]).recover()
        assert recovered.service.model_version_for(TABLE) == v2
        assert recovered.journal_entries_applied >= 1
        for opened in recovered.stores.values():
            opened.close()

    def test_rollback_between_checkpoints_replays_to_old_version(self, stack):
        self._checkpoint(stack)
        v2 = stack["version_store"].save(TABLE, stack["model"])
        stack["service"].swap_model(TABLE, stack["model"], version=v2)
        # a rollback is just a swap restoring the previous version marker
        stack["service"].swap_model(TABLE, stack["model"], version=1)
        recovered = RecoveryManager(stack["dir"]).recover()
        assert recovered.service.model_version_for(TABLE) == 1
        for opened in recovered.stores.values():
            opened.close()

    @pytest.mark.parametrize("mode", CHECKPOINT_CORRUPTION_MODES)
    def test_corrupt_newest_falls_back_to_previous(self, stack, mode):
        ckpt = self._checkpoint(stack)
        _serve(stack["service"], stack["queries"], 5)
        ckpt.checkpoint()
        corrupt_checkpoint_file(stack["dir"] / "checkpoint.v0002.json", mode)
        recovered = RecoveryManager(stack["dir"]).recover()
        assert recovered.checkpoint_version == 1
        assert recovered.skipped_checkpoints
        assert recovered.skipped_checkpoints[0][0] == 2
        for opened in recovered.stores.values():
            opened.close()

    def test_all_corrupt_raises_typed_error(self, stack):
        ckpt = self._checkpoint(stack)
        ckpt.checkpoint()
        for path in stack["dir"].glob("checkpoint.*.json"):
            corrupt_checkpoint_file(path, "garbage")
        with pytest.raises(CheckpointCorruptError):
            RecoveryManager(stack["dir"]).recover()

    def test_empty_directory_raises_typed_error(self, tmp_path):
        with pytest.raises(CheckpointCorruptError):
            RecoveryManager(tmp_path / "nothing").recover()

    def test_missing_model_file_invalidates_whole_checkpoint(self, stack):
        ckpt = self._checkpoint(stack)
        v2 = stack["version_store"].save(TABLE, stack["model"])
        stack["service"].swap_model(TABLE, stack["model"], version=v2)
        ckpt.checkpoint()  # manifest v2 references model version 2
        corrupt_model_file(
            stack["version_store"].path_for(TABLE, v2), "garbage"
        )
        recovered = RecoveryManager(stack["dir"]).recover()
        # never a half-recovered registry: the whole newest manifest is
        # discarded and the previous one (referencing v1) applies
        assert recovered.checkpoint_version == 1
        assert recovered.service.model_version_for(TABLE) == 1
        for opened in recovered.stores.values():
            opened.close()

    def test_truncated_journal_keeps_durable_prefix(self, stack):
        self._checkpoint(stack)
        for marker in (2, 3):
            stack["version_store"].save(TABLE, stack["model"])
            stack["service"].swap_model(TABLE, stack["model"], version=marker)
        truncate_journal(
            stack["dir"] / "journal.v0001.jsonl", keep_lines=1, tear_bytes=9
        )
        recovered = RecoveryManager(stack["dir"]).recover()
        # the first swap survived, the torn second one is dropped
        assert recovered.service.model_version_for(TABLE) == 2
        assert recovered.journal_entries_dropped >= 1
        for opened in recovered.stores.values():
            opened.close()

    def test_restored_drift_state_resumes_window_and_cooldown(self, stack):
        service, manager = stack["service"], stack["manager"]
        _serve(service, stack["queries"], 20)
        manager.tick()
        assert manager.window_statements(TABLE) == 20
        self._checkpoint(stack)
        recovered = RecoveryManager(stack["dir"]).recover()
        new_manager = ModelManager(
            recovered.service,
            policy=DriftPolicy(min_window_statements=10, min_retrain_queries=8),
            version_store=stack["version_store"],
        )
        recovered.attach_manager(new_manager)
        assert new_manager.window_statements(TABLE) == 20
        status = new_manager.status_for(TABLE)
        assert status["retrain_count"] == 0
        # the restored window is live: new traffic keeps accumulating
        _serve(recovered.service, stack["queries"], 5)
        new_manager.tick()
        assert new_manager.window_statements(TABLE) == 25
        for opened in recovered.stores.values():
            opened.close()

    def test_cooldown_survives_as_remaining_seconds(self, stack):
        manager = stack["manager"]
        state = manager._tables[TABLE]
        state.next_eligible = manager._clock() + 120.0
        state.consecutive_failures = 2
        exported = manager.export_state(TABLE)
        assert 115.0 < exported["cooldown_remaining"] <= 120.0
        self._checkpoint(stack)
        recovered = RecoveryManager(stack["dir"]).recover()
        new_manager = ModelManager(recovered.service, version_store=stack["version_store"])
        recovered.attach_manager(new_manager)
        restored = new_manager._tables[TABLE]
        remaining = restored.next_eligible - new_manager._clock()
        assert 100.0 < remaining <= 120.0
        assert restored.consecutive_failures == 2
        for opened in recovered.stores.values():
            opened.close()

    def test_recover_concurrent_front_with_stats(self, stack):
        front = ConcurrentAnalyticsService(
            stack["service"],
            policy=ConcurrencyPolicy(coalesce_window_seconds=0.0),
        )
        front.execute_script([_q1(q) for q in stack["queries"][:8]])
        ckpt = ServiceCheckpointer(
            stack["service"],
            stack["dir"],
            front=front,
            version_store=stack["version_store"],
        )
        ckpt.checkpoint()
        front.close()
        recovered = RecoveryManager(stack["dir"]).recover(
            concurrent=True,
            concurrency_policy=ConcurrencyPolicy(coalesce_window_seconds=0.0),
        )
        assert recovered.front is not None
        assert recovered.serving is recovered.front
        stats = recovered.front.statistics_for(TABLE)
        assert stats.statements_executed == 8
        results = recovered.front.execute_script(
            [_q1(stack["queries"][0])]
        )
        assert results[0].ok
        recovered.front.close()
        for opened in recovered.stores.values():
            opened.close()

    def test_in_memory_store_recovers_through_stores_mapping(self, tmp_path):
        store = SQLiteDataStore(":memory:")
        store.load_dataset(_dataset(500), TABLE)
        service = AnalyticsService()
        service.register_table_from_store(store, TABLE)
        ServiceCheckpointer(service, tmp_path / "ckpt").checkpoint()
        # without the mapping the engine is unrecoverable (no file to open)
        bare = RecoveryManager(tmp_path / "ckpt").recover()
        assert TABLE not in bare.service.tables or not bare.stores
        # with it, the engine rebuilds over the handed-in live store
        recovered = RecoveryManager(
            tmp_path / "ckpt", stores={":memory:": store}
        ).recover()
        assert np.isfinite(
            recovered.service.execute(
                f"SELECT AVG(u) FROM {TABLE} WITHIN 0.2 OF (0.5, 0.5)"
            )
        )
        store.close()


# --------------------------------------------------------------------- #
# graceful shutdown
# --------------------------------------------------------------------- #
class TestGracefulShutdown:
    def test_shutdown_drains_and_takes_final_checkpoint(self, stack):
        front = ConcurrentAnalyticsService(
            stack["service"],
            policy=ConcurrencyPolicy(coalesce_window_seconds=0.0),
        )
        scheduler = LifecycleScheduler(
            stack["manager"], interval_seconds=0.05
        ).start()
        ckpt = ServiceCheckpointer(
            stack["service"],
            stack["dir"],
            manager=stack["manager"],
            front=front,
            version_store=stack["version_store"],
            scheduler=scheduler,
            interval_seconds=60.0,
        )
        ckpt.start()
        future = front.submit_script([_q1(q) for q in stack["queries"][:4]])
        path = ckpt.shutdown(drain_seconds=5.0)
        # the drain let the submitted script finish cleanly
        assert all(r.ok for r in future.result(timeout=1.0))
        assert not scheduler.running
        assert not ckpt.running
        assert front.closed
        assert path.exists()
        manifest = json.loads(path.read_text())
        stats = manifest["payload"]["tables"][TABLE]["statistics"]
        assert stats["statements_executed"] >= 4
        # the final checkpoint recovers
        recovered = RecoveryManager(stack["dir"]).recover()
        assert recovered.checkpoint_version >= 1
        for opened in recovered.stores.values():
            opened.close()


# --------------------------------------------------------------------- #
# end-to-end: drift -> crash -> restart -> retrain
# --------------------------------------------------------------------- #
class TestDriftAcrossRestart:
    def test_drift_detected_before_crash_retrains_after_restart(self, tmp_path):
        """The paper's closed loop survives a process boundary.

        Traffic shifts to an uncovered region before the crash, pushing
        the restored drift window over threshold; after restart the
        rebuilt manager retrains on the *restored* query log — no fresh
        traffic needed — and the fallback rate recovers.
        """
        store = SQLiteDataStore(tmp_path / "data.db")
        store.load_dataset(_dataset(3_000, seed=7), TABLE)
        service = AnalyticsService()
        service.register_table_from_store(store, TABLE)
        engine = service.engine_for(TABLE)
        # train ONLY on the left half of the domain
        trained_queries = _workload(0.0, 0.45, 80, seed=3)
        model = _train_model(engine, trained_queries)
        version_store = ModelVersionStore(tmp_path / "versions")
        service.swap_model(
            TABLE, model, version=version_store.save(TABLE, model)
        )
        policy = DriftPolicy(
            fallback_rate_threshold=0.3,
            min_window_statements=20,
            min_retrain_queries=16,
            cooldown_seconds=0.0,
        )
        manager = ModelManager(service, policy=policy, version_store=version_store)
        manager.manage(TABLE, store=store, store_table=TABLE)
        # shifted traffic: the right half the model never saw
        shifted = _workload(0.55, 1.0, 60, seed=4)
        for query in shifted:
            service.execute(_q1(query))
        # the manager OBSERVES the drift... and the process dies before
        # it can retrain (cooldown gate simulated via manual window check)
        state = manager._tables[TABLE]
        stats = service.statistics_for(TABLE)
        previous = state.snapshot
        state.window.append(
            (
                stats.statements_executed - previous.statements_executed,
                stats.fallback_count - previous.fallback_count,
            )
        )
        state.snapshot = stats.snapshot()
        assert manager.window_fallback_rate(TABLE) > policy.fallback_rate_threshold
        ServiceCheckpointer(
            service,
            tmp_path / "ckpt",
            manager=manager,
            version_store=version_store,
        ).checkpoint()
        # ---- crash; new process ----
        recovered = RecoveryManager(tmp_path / "ckpt").recover()
        restored = recovered.service
        new_manager = ModelManager(
            restored, policy=policy, version_store=version_store
        )
        recovered.attach_manager(new_manager)
        # drift evidence survived the restart
        assert (
            new_manager.window_fallback_rate(TABLE)
            > policy.fallback_rate_threshold
        )
        assert len(restored.recent_queries(TABLE)) >= policy.min_retrain_queries
        before_version = restored.model_version_for(TABLE)
        statuses = new_manager.tick()
        assert statuses[TABLE] in ("retrained", "rolled_back")
        if statuses[TABLE] == "retrained":
            assert restored.model_version_for(TABLE) != before_version
            # the retrained model now covers the shifted region
            post = restored.statistics_for(TABLE).snapshot()
            for query in _workload(0.55, 1.0, 30, seed=5):
                restored.execute(_q1(query))
            delta = restored.statistics_for(TABLE)
            shifted_fallbacks = delta.fallback_count - post.fallback_count
            shifted_statements = (
                delta.statements_executed - post.statements_executed
            )
            assert shifted_fallbacks / shifted_statements < 0.3
        store.close()
        for opened in recovered.stores.values():
            opened.close()


# --------------------------------------------------------------------- #
# fault soak (scaled up under REPRO_FAULT_SOAK=1 in CI)
# --------------------------------------------------------------------- #
class TestDurabilitySoak:
    @pytest.mark.skipif(not _SOAK, reason="set REPRO_FAULT_SOAK=1 to run")
    def test_crash_recovery_soak(self, tmp_path):
        """Crash the checkpointer at every fault point, corrupt every mode,
        and assert recovery always lands on a consistent registry."""
        rounds = 3
        for seed in range(rounds):
            base = tmp_path / f"round{seed}"
            base.mkdir(parents=True, exist_ok=True)
            store = SQLiteDataStore(base / "data.db")
            store.load_dataset(_dataset(800, seed=seed), TABLE)
            service = AnalyticsService()
            service.register_table_from_store(store, TABLE)
            model = _train_model(
                service.engine_for(TABLE), _workload(0.0, 1.0, 40, seed=seed)
            )
            version_store = ModelVersionStore(base / "versions")
            service.swap_model(
                TABLE, model, version=version_store.save(TABLE, model)
            )
            injector = FaultInjector()
            # corruption accumulates across modes, so retain enough
            # checkpoints that a clean fallback always survives
            ckpt = ServiceCheckpointer(
                service,
                base / "ckpt",
                version_store=version_store,
                injector=injector,
                keep_checkpoints=16,
            )
            ckpt.checkpoint()
            for point in (
                "durability.pre_checkpoint",
                "durability.mid_checkpoint",
            ):
                injector.arm(point, error=InjectedFaultError)
                with pytest.raises(InjectedFaultError):
                    ckpt.checkpoint()
                injector.disarm(point)
                ckpt.checkpoint()
            for mode in CHECKPOINT_CORRUPTION_MODES:
                newest = checkpoint_versions(base / "ckpt")[-1]
                corrupt_checkpoint_file(
                    base / "ckpt" / f"checkpoint.v{newest:04d}.json", mode
                )
                recovered = RecoveryManager(base / "ckpt").recover()
                assert recovered.checkpoint_version < newest
                assert recovered.service.model_version_for(TABLE) == 1
                for opened in recovered.stores.values():
                    opened.close()
                ckpt.checkpoint()  # re-establish a clean newest
            store.close()
