"""Tests for the scalar metrics and the evaluation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ols import OLSRegressor
from repro.config import ModelConfig
from repro.core.model import LLMModel
from repro.data.synthetic import SyntheticDataset
from repro.dbms.executor import ExactQueryEngine
from repro.exceptions import DimensionalityMismatchError
from repro.metrics.evaluation import (
    evaluate_q1_accuracy,
    evaluate_q2_goodness_of_fit,
    evaluate_value_prediction,
)
from repro.metrics.regression import (
    cod,
    coefficient_of_determination,
    fraction_of_variance_unexplained,
    fvu,
    mean_absolute_error,
    rmse,
    sum_of_squared_residuals,
    total_sum_of_squares,
)
from repro.queries.query import Query
from repro.queries.stream import LabelledWorkload
from repro.queries.workload import QueryWorkloadGenerator, RadiusDistribution, WorkloadSpec


class TestScalarMetrics:
    def test_rmse_of_perfect_prediction_is_zero(self):
        values = np.array([1.0, 2.0, 3.0])
        assert rmse(values, values) == 0.0

    def test_rmse_known_value(self):
        assert rmse([0.0, 0.0], [1.0, -1.0]) == pytest.approx(1.0)

    def test_mae_known_value(self):
        assert mean_absolute_error([0.0, 0.0], [2.0, -1.0]) == pytest.approx(1.5)

    def test_ssr_and_tss(self):
        actual = np.array([1.0, 2.0, 3.0])
        predicted = np.array([1.0, 2.0, 4.0])
        assert sum_of_squared_residuals(actual, predicted) == pytest.approx(1.0)
        assert total_sum_of_squares(actual) == pytest.approx(2.0)

    def test_fvu_and_cod_relationship(self):
        actual = np.array([1.0, 2.0, 3.0, 4.0])
        predicted = np.array([1.1, 1.9, 3.2, 3.8])
        assert cod(actual, predicted) == pytest.approx(1.0 - fvu(actual, predicted))

    def test_fvu_of_mean_prediction_is_one(self):
        actual = np.array([1.0, 2.0, 3.0])
        predicted = np.full(3, actual.mean())
        assert fvu(actual, predicted) == pytest.approx(1.0)

    def test_fvu_above_one_for_anti_correlated_prediction(self):
        actual = np.array([1.0, 2.0, 3.0])
        predicted = np.array([3.0, 2.0, 1.0])
        assert fvu(actual, predicted) > 1.0
        assert cod(actual, predicted) < 0.0

    def test_constant_actual_values(self):
        actual = np.full(4, 2.0)
        assert fvu(actual, actual) == 0.0
        assert np.isinf(fvu(actual, actual + 1.0))
        assert cod(actual, actual) == 1.0
        assert cod(actual, actual + 1.0) == float("-inf")

    def test_aliases_match_full_names(self):
        actual = np.array([1.0, 2.0, 4.0])
        predicted = np.array([1.5, 2.5, 3.0])
        assert fvu(actual, predicted) == fraction_of_variance_unexplained(actual, predicted)
        assert cod(actual, predicted) == coefficient_of_determination(actual, predicted)

    def test_length_mismatch_raises(self):
        with pytest.raises(DimensionalityMismatchError):
            rmse([1.0, 2.0], [1.0])

    def test_empty_input_raises(self):
        with pytest.raises(DimensionalityMismatchError):
            rmse([], [])
        with pytest.raises(DimensionalityMismatchError):
            total_sum_of_squares([])


@pytest.fixture(scope="module")
def evaluation_setup():
    """A trained model plus engine over a mildly non-linear dataset."""
    rng = np.random.default_rng(0)
    inputs = rng.uniform(0, 1, size=(6_000, 2))
    outputs = np.sin(2 * np.pi * inputs[:, 0]) * 0.5 + inputs[:, 1]
    dataset = SyntheticDataset(inputs=inputs, outputs=outputs, name="wavy", domain=(0.0, 1.0))
    engine = ExactQueryEngine(dataset)
    spec = WorkloadSpec(dimension=2, radius=RadiusDistribution(mean=0.12, std=0.02))
    queries = QueryWorkloadGenerator(spec, seed=1).generate(900)
    workload = LabelledWorkload.from_queries(queries, engine.mean_value)
    model = LLMModel(dimension=2, config=ModelConfig(quantization_coefficient=0.06))
    model.fit(workload)
    test_queries = QueryWorkloadGenerator(spec, seed=99).generate(60)
    return model, engine, test_queries


class TestEvaluationHelpers:
    def test_q1_accuracy_report(self, evaluation_setup):
        model, engine, queries = evaluation_setup
        report = evaluate_q1_accuracy(model, engine, queries)
        assert report.evaluated_queries > 0
        assert report.rmse < 0.2
        assert report.actual.shape == report.predicted.shape

    def test_q1_accuracy_skips_empty_subspaces(self, evaluation_setup):
        model, engine, _ = evaluation_setup
        outside = [Query(center=np.array([9.0, 9.0]), radius=0.01)]
        report = evaluate_q1_accuracy(model, engine, outside)
        assert report.evaluated_queries == 0
        assert report.skipped_queries == 1
        assert np.isnan(report.rmse)

    def test_q2_goodness_of_fit_report(self, evaluation_setup):
        model, engine, queries = evaluation_setup
        analyst = [Query(center=q.center, radius=q.radius * 4) for q in queries[:15]]
        report = evaluate_q2_goodness_of_fit(
            model, engine, analyst, plr_max_basis_functions=8
        )
        assert report.evaluated_queries > 0
        # PLR has data access and flexible knots: it should fit at least as
        # well as a single global line.
        assert report.plr_fvu <= report.reg_fvu + 1e-9
        assert report.mean_local_models >= 1.0
        assert report.llm_cod == pytest.approx(1.0 - report.llm_fvu, abs=1e-9)

    def test_q2_report_with_no_valid_subspaces(self, evaluation_setup):
        model, engine, _ = evaluation_setup
        outside = [Query(center=np.array([9.0, 9.0]), radius=0.01)]
        report = evaluate_q2_goodness_of_fit(model, engine, outside)
        assert report.evaluated_queries == 0
        assert np.isnan(report.llm_fvu)

    def test_value_prediction_report(self, evaluation_setup):
        model, engine, queries = evaluation_setup
        report = evaluate_value_prediction(model, engine, queries[:15], seed=0)
        assert report["points"] > 0
        for key in ("llm", "reg", "plr"):
            assert np.isfinite(report[key])
        # A model without data access cannot beat PLR fitted on the subspace
        # by a large margin, but it should be in a comparable range.
        assert report["llm"] < 5 * max(report["plr"], 1e-3) + 0.5

    def test_value_prediction_empty(self, evaluation_setup):
        model, engine, _ = evaluation_setup
        outside = [Query(center=np.array([9.0, 9.0]), radius=0.01)]
        report = evaluate_value_prediction(model, engine, outside)
        assert report["points"] == 0
