"""Tests for workload specification, generation and splitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.queries.query import Query
from repro.queries.workload import (
    QueryWorkloadGenerator,
    RadiusDistribution,
    WorkloadSpec,
    split_workload,
)


class TestRadiusDistribution:
    def test_sampling_is_positive(self):
        rng = np.random.default_rng(0)
        dist = RadiusDistribution(mean=0.05, std=0.2)
        radii = dist.sample(rng, 500)
        assert np.all(radii >= dist.minimum)

    def test_zero_std_is_constant(self):
        rng = np.random.default_rng(0)
        dist = RadiusDistribution(mean=0.3, std=0.0)
        radii = dist.sample(rng, 10)
        assert np.allclose(radii, 0.3)

    def test_sample_mean_close_to_configured_mean(self):
        rng = np.random.default_rng(0)
        dist = RadiusDistribution(mean=0.5, std=0.05)
        radii = dist.sample(rng, 2_000)
        assert abs(radii.mean() - 0.5) < 0.01

    @pytest.mark.parametrize("mean,std", [(0.0, 0.1), (-0.1, 0.1), (0.1, -0.1)])
    def test_rejects_bad_parameters(self, mean, std):
        with pytest.raises(WorkloadError):
            RadiusDistribution(mean=mean, std=std)

    def test_rejects_negative_sample_size(self):
        dist = RadiusDistribution(mean=0.1, std=0.1)
        with pytest.raises(WorkloadError):
            dist.sample(np.random.default_rng(0), -1)


class TestWorkloadSpec:
    def test_scalar_bounds_broadcast(self):
        spec = WorkloadSpec(dimension=3, center_low=-1.0, center_high=1.0)
        low, high = spec.bounds
        assert low.shape == (3,) and high.shape == (3,)
        assert np.all(low == -1.0) and np.all(high == 1.0)

    def test_per_dimension_bounds(self):
        spec = WorkloadSpec(dimension=2, center_low=[0.0, -1.0], center_high=[1.0, 1.0])
        low, high = spec.bounds
        assert low.tolist() == [0.0, -1.0]
        assert high.tolist() == [1.0, 1.0]

    def test_rejects_inverted_bounds(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(dimension=2, center_low=1.0, center_high=0.0)

    def test_rejects_bad_dimension(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(dimension=0)


class TestQueryWorkloadGenerator:
    def test_generates_requested_count(self):
        spec = WorkloadSpec(dimension=2)
        queries = QueryWorkloadGenerator(spec, seed=1).generate(25)
        assert len(queries) == 25
        assert all(isinstance(q, Query) for q in queries)

    def test_centers_within_bounds(self):
        spec = WorkloadSpec(dimension=3, center_low=-2.0, center_high=2.0)
        queries = QueryWorkloadGenerator(spec, seed=1).generate(200)
        centers = np.vstack([q.center for q in queries])
        assert centers.min() >= -2.0 and centers.max() <= 2.0

    def test_seed_reproducibility(self):
        spec = WorkloadSpec(dimension=2)
        first = QueryWorkloadGenerator(spec, seed=42).generate(10)
        second = QueryWorkloadGenerator(spec, seed=42).generate(10)
        for a, b in zip(first, second):
            assert np.allclose(a.center, b.center)
            assert a.radius == pytest.approx(b.radius)

    def test_different_seeds_differ(self):
        spec = WorkloadSpec(dimension=2)
        first = QueryWorkloadGenerator(spec, seed=1).generate(5)
        second = QueryWorkloadGenerator(spec, seed=2).generate(5)
        assert not all(
            np.allclose(a.center, b.center) for a, b in zip(first, second)
        )

    def test_iter_queries_matches_count(self):
        spec = WorkloadSpec(dimension=2)
        generator = QueryWorkloadGenerator(spec, seed=1)
        queries = list(generator.iter_queries(37, batch_size=10))
        assert len(queries) == 37

    def test_norm_order_propagates(self):
        spec = WorkloadSpec(dimension=2, norm_order=1.0)
        queries = QueryWorkloadGenerator(spec, seed=1).generate(3)
        assert all(q.norm_order == 1.0 for q in queries)

    def test_rejects_negative_count(self):
        spec = WorkloadSpec(dimension=2)
        with pytest.raises(WorkloadError):
            QueryWorkloadGenerator(spec, seed=1).generate(-1)


class TestSplitWorkload:
    def _queries(self, count: int) -> list[Query]:
        spec = WorkloadSpec(dimension=2)
        return QueryWorkloadGenerator(spec, seed=5).generate(count)

    def test_split_sizes(self):
        split = split_workload(self._queries(100), training_fraction=0.7, seed=0)
        assert split.training_size == 70
        assert split.testing_size == 30

    def test_split_partitions_the_workload(self):
        queries = self._queries(50)
        split = split_workload(queries, training_fraction=0.5, seed=0)
        assert split.training_size + split.testing_size == len(queries)

    def test_no_shuffle_preserves_order(self):
        queries = self._queries(10)
        split = split_workload(queries, training_fraction=0.5, shuffle=False)
        assert list(split.training) == queries[:5]
        assert list(split.testing) == queries[5:]

    def test_rejects_bad_fraction(self):
        with pytest.raises(WorkloadError):
            split_workload(self._queries(10), training_fraction=1.0)

    def test_rejects_tiny_workload(self):
        with pytest.raises(WorkloadError):
            split_workload(self._queries(1), training_fraction=0.5)
