"""The invariant linter: rules, suppression, scoping, CLI, dogfooding.

The fixture tree under ``tests/fixtures/analysis`` holds one file per
rule that trips it exactly once, plus a ``clean.py`` that walks up to
every rule's line without crossing it — so both recall (each seeded
violation found) and precision (no finding on the near-misses) are
pinned.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.linter import (
    lint_file,
    lint_paths,
    lint_source,
    module_name_for,
    report_json,
)
from repro.analysis.rules import DEFAULT_RULES, RULES_BY_CODE

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
REPO_SRC = Path(__file__).resolve().parent.parent / "src"

ALL_CODES = tuple(rule.code for rule in DEFAULT_RULES)


# ---------------------------------------------------------------------- #
# seeded fixtures: each rule trips exactly once
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize(
    ("fixture", "code"),
    [
        ("raw_clock.py", "REPRO001"),
        ("bare_assert.py", "REPRO002"),
        ("src/repro/dbms/untyped_raise.py", "REPRO003"),
        ("swallowed.py", "REPRO004"),
        ("missing_fsync.py", "REPRO005"),
    ],
)
def test_fixture_trips_its_rule_exactly_once(fixture: str, code: str) -> None:
    findings = lint_file(FIXTURES / fixture)
    assert [f.rule for f in findings] == [code]
    assert findings[0].line > 0
    assert findings[0].column > 0


def test_fixture_tree_trips_every_rule_exactly_once() -> None:
    findings, checked = lint_paths([FIXTURES])
    assert checked == 6  # five violations plus clean.py
    assert sorted(f.rule for f in findings) == sorted(ALL_CODES)


def test_clean_fixture_has_no_findings() -> None:
    assert lint_file(FIXTURES / "clean.py") == []


# ---------------------------------------------------------------------- #
# suppression and scoping
# ---------------------------------------------------------------------- #
def test_noqa_with_matching_code_suppresses() -> None:
    source = "import time\nnow = time.time()  # noqa: REPRO001 - seam\n"
    assert lint_source(source) == []


def test_noqa_with_other_code_does_not_suppress() -> None:
    source = "import time\nnow = time.time()  # noqa: REPRO002\n"
    assert [f.rule for f in lint_source(source)] == ["REPRO001"]


def test_bare_noqa_suppresses_every_rule_on_the_line() -> None:
    source = "import time\nnow = time.time()  # noqa\n"
    assert lint_source(source) == []


def test_noqa_on_another_line_does_not_suppress() -> None:
    source = "import time\n# noqa: REPRO001\nnow = time.time()\n"
    assert [f.rule for f in lint_source(source)] == ["REPRO001"]


def test_repro003_is_scoped_to_the_dbms_tier() -> None:
    source = 'raise ValueError("boom")\n'
    assert lint_source(source, module_name="tools.helper") == []
    findings = lint_source(source, module_name="repro.dbms.helper")
    assert [f.rule for f in findings] == ["REPRO003"]


def test_module_name_anchors_at_src() -> None:
    assert module_name_for("src/repro/dbms/serving.py") == "repro.dbms.serving"
    assert module_name_for("src/repro/__init__.py") == "repro"
    assert module_name_for("somewhere/helper.py") == "helper"


# ---------------------------------------------------------------------- #
# rule edge cases (precision)
# ---------------------------------------------------------------------- #
def test_repro001_tracks_import_aliases() -> None:
    aliased_module = "import time as clk\nnow = clk.time()\n"
    assert [f.rule for f in lint_source(aliased_module)] == ["REPRO001"]
    aliased_function = "from time import monotonic as now\nt = now()\n"
    assert [f.rule for f in lint_source(aliased_function)] == ["REPRO001"]


def test_repro001_ignores_unrelated_time_names() -> None:
    # No ``time`` import: a parameter that happens to be called ``time``
    # is not the stdlib clock.
    source = "def f(time):\n    return time.time()\n"
    assert lint_source(source) == []


def test_repro004_accepts_each_discipline() -> None:
    reraise = (
        "def f(cb):\n"
        "    try:\n"
        "        cb()\n"
        "    except Exception:\n"
        "        raise\n"
    )
    publish = (
        "def f(self, cb):\n"
        "    try:\n"
        "        cb()\n"
        "    except Exception as exc:\n"
        "        self._hub.publish(exc)\n"
    )
    record = (
        "def f(self, cb):\n"
        "    try:\n"
        "        cb()\n"
        "    except Exception as exc:\n"
        "        self.last_error = exc\n"
    )
    for source in (reraise, publish, record):
        assert lint_source(source) == []


def test_repro004_flags_bare_except() -> None:
    source = "def f(cb):\n    try:\n        cb()\n    except:\n        pass\n"
    assert [f.rule for f in lint_source(source)] == ["REPRO004"]


def test_repro005_nested_defs_are_separate_scopes() -> None:
    # An fsync inside a *nested* function does not cover the outer write.
    source = (
        "import os\n"
        "def outer(fd):\n"
        "    def flush():\n"
        "        os.fsync(fd)\n"
        "    os.write(fd, b'x')\n"
    )
    assert [f.rule for f in lint_source(source)] == ["REPRO005"]


# ---------------------------------------------------------------------- #
# reporting, CLI, and dogfooding
# ---------------------------------------------------------------------- #
def test_report_json_shape() -> None:
    findings, checked = lint_paths([FIXTURES])
    payload = json.loads(report_json(findings, checked))
    assert payload["files_checked"] == checked
    assert payload["finding_count"] == len(findings)
    assert payload["findings_by_rule"] == {code: 1 for code in ALL_CODES}
    assert {f["rule"] for f in payload["findings"]} == set(ALL_CODES)


def test_repo_source_tree_is_lint_clean() -> None:
    """The CI gate, in-process: ``lint src`` finds nothing."""
    findings, checked = lint_paths([REPO_SRC])
    assert checked > 40
    assert findings == []


def test_cli_lint_exits_nonzero_on_fixtures(capsys: pytest.CaptureFixture) -> None:
    assert main(["lint", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "REPRO001" in out
    assert "5 finding(s) in 6 file(s)" in out


def test_cli_lint_exits_zero_on_src(capsys: pytest.CaptureFixture) -> None:
    assert main(["lint", str(REPO_SRC)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_lint_json_format(capsys: pytest.CaptureFixture) -> None:
    assert main(["lint", str(FIXTURES), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["finding_count"] == 5


def test_cli_lint_select_restricts_rules(capsys: pytest.CaptureFixture) -> None:
    assert main(["lint", str(FIXTURES), "--select", "REPRO002"]) == 1
    out = capsys.readouterr().out
    assert "1 finding(s)" in out
    assert "REPRO001" not in out


def test_cli_lint_select_rejects_unknown_rule() -> None:
    with pytest.raises(SystemExit):
        main(["lint", str(FIXTURES), "--select", "REPRO999"])


def test_cli_rules_prints_the_catalogue(capsys: pytest.CaptureFixture) -> None:
    assert main(["rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES_BY_CODE:
        assert code in out
