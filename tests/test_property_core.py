"""Property-based tests for the core model invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ols import OLSRegressor
from repro.baselines.plr import MARSRegressor
from repro.config import ModelConfig, TrainingConfig
from repro.core.avq import GrowingQuantizer
from repro.core.model import LLMModel
from repro.core.prototypes import LocalLinearMap
from repro.core.sgd import apply_winner_update
from repro.queries.query import Query

unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestQuantizerInvariants:
    @given(
        st.lists(
            st.tuples(unit_floats, unit_floats),
            min_size=1,
            max_size=120,
        ),
        st.floats(min_value=0.05, max_value=1.5, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_new_prototypes_only_created_beyond_vigilance(self, centers, vigilance):
        """At creation time every new prototype is farther than rho from all others.

        Prototypes drift afterwards, so the invariant is checked at the
        moment of growth, which is exactly what the algorithm guarantees.
        """
        quantizer = GrowingQuantizer(vigilance=vigilance)
        for x1, x2 in centers:
            vector = np.array([x1, x2, 0.1])
            before = quantizer.prototype_matrix()
            _, grew, distance = quantizer.observe(vector)
            if grew and before.size:
                distances = np.linalg.norm(before - vector, axis=1)
                assert distances.min() > vigilance
                assert distance == pytest.approx(distances.min())
        assert 1 <= quantizer.prototype_count <= len(centers)

    @given(
        st.lists(st.tuples(unit_floats, unit_floats), min_size=5, max_size=80),
    )
    @settings(max_examples=30, deadline=None)
    def test_coarser_vigilance_never_more_prototypes(self, centers):
        fine = GrowingQuantizer(vigilance=0.1)
        coarse = GrowingQuantizer(vigilance=0.5)
        for x1, x2 in centers:
            vector = np.array([x1, x2, 0.1])
            fine.observe(vector)
            coarse.observe(vector)
        assert coarse.prototype_count <= fine.prototype_count


class TestSGDInvariants:
    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
        st.tuples(unit_floats, unit_floats),
    )
    @settings(max_examples=60, deadline=None)
    def test_prototype_update_is_convex_combination(self, rate, answer, center):
        llm = LocalLinearMap(prototype=np.array([0.5, 0.5, 0.1]))
        before = llm.prototype
        query = np.array([center[0], center[1], 0.1])
        apply_winner_update(llm, query, answer, rate)
        after = llm.prototype
        # The updated prototype lies on the segment between the old
        # prototype and the query.
        expected = (1 - rate) * before + rate * query
        assert np.allclose(after, expected, atol=1e-12)

    @given(st.floats(min_value=0.01, max_value=1.0), st.floats(min_value=-3, max_value=3, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_intercept_error_shrinks(self, rate, answer):
        llm = LocalLinearMap(prototype=np.array([0.5, 0.1]), mean_output=0.0)
        before_error = abs(answer - llm.mean_output)
        apply_winner_update(llm, np.array([0.5, 0.1]), answer, rate)
        after_error = abs(answer - llm.mean_output)
        assert after_error <= before_error + 1e-12


class TestModelInvariants:
    @given(st.integers(min_value=20, max_value=80), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_prototype_count_never_exceeds_training_pairs(self, count, seed):
        rng = np.random.default_rng(seed)
        model = LLMModel(
            dimension=2,
            config=ModelConfig(quantization_coefficient=0.05),
            training=TrainingConfig(convergence_threshold=1e-9),
        )
        for _ in range(count):
            center = rng.uniform(0, 1, size=2)
            model.partial_fit(Query(center=center, radius=0.1), float(center.sum()))
        assert 1 <= model.prototype_count <= count
        assert model.steps == count

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_prediction_within_training_answer_range(self, seed):
        rng = np.random.default_rng(seed)
        model = LLMModel(dimension=2, config=ModelConfig(quantization_coefficient=0.1))
        answers = []
        for _ in range(150):
            center = rng.uniform(0, 1, size=2)
            answer = float(np.sin(center[0]) + center[1])
            answers.append(answer)
            model.partial_fit(Query(center=center, radius=0.1), answer)
        lo, hi = min(answers), max(answers)
        margin = 0.5 * (hi - lo) + 0.1
        for _ in range(20):
            query = Query(center=rng.uniform(0, 1, size=2), radius=0.1)
            prediction = model.predict_mean(query)
            assert lo - margin <= prediction <= hi + margin


class TestBaselineInvariants:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_ols_residuals_orthogonal_to_inputs(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(60, 2))
        u = rng.normal(size=60)
        model = OLSRegressor().fit(x, u)
        residuals = model.residuals(x, u)
        # Normal equations: residuals are orthogonal to each column and sum to 0.
        assert abs(residuals.sum()) < 1e-6
        assert np.all(np.abs(x.T @ residuals) < 1e-6)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_plr_never_worse_than_constant_model(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, size=(120, 1))
        u = np.sin(4 * x.ravel()) + rng.normal(0, 0.1, 120)
        model = MARSRegressor(max_basis_functions=6).fit(x, u)
        predictions = model.predict(x)
        ssr = np.sum((u - predictions) ** 2)
        tss = np.sum((u - u.mean()) ** 2)
        assert ssr <= tss * (1 + 1e-9)
