"""The runtime detectors: lockset races, lock-order cycles, the seams.

Every test drives a *private* :class:`RaceRegistry` (never the global
one), so seeded races cannot leak into a surrounding
``REPRO_RACE_CHECK=1`` session — the same isolation the production
``use_registry`` seam provides.
"""

from __future__ import annotations

import gc
import threading
from typing import Callable

import pytest

from repro.analysis import instrument
from repro.analysis.cli import run_selfcheck
from repro.analysis.races import CheckedLock, RaceRegistry


class Owner:
    """A weakref-able stand-in for an instrumented service object."""


def run_on_thread(fn: Callable[[], None], name: str = "worker") -> None:
    thread = threading.Thread(target=fn, name=name)
    thread.start()
    thread.join()


@pytest.fixture()
def registry() -> RaceRegistry:
    return RaceRegistry(capture_stacks=False)


@pytest.fixture()
def preserved_global_registry():
    """Restore whatever registry the session had active (maybe none)."""
    previous = instrument.active_registry()
    try:
        yield
    finally:
        if previous is None:
            instrument.disable()
        else:
            instrument.enable(previous)


# ---------------------------------------------------------------------- #
# lockset algorithm
# ---------------------------------------------------------------------- #
def test_two_thread_unguarded_write_is_flagged() -> None:
    registry = RaceRegistry()  # stacks on: the report must carry them
    owner = Owner()
    registry.note_access(owner, "value")
    run_on_thread(lambda: registry.note_access(owner, "value"), "racer")
    findings = registry.race_findings()
    assert len(findings) == 1
    finding = findings[0]
    assert finding.touchpoint == "Owner.value"
    assert "racer" in finding.threads
    assert finding.unprotected_stack  # stacks captured for the report
    assert "candidate race on Owner.value" in finding.format()


def test_guarded_writes_are_clean(registry: RaceRegistry) -> None:
    owner = Owner()
    guard = registry.make_lock("guard")

    def locked_write() -> None:
        with guard:
            registry.note_access(owner, "value")

    locked_write()
    run_on_thread(locked_write)
    assert registry.findings() == []


def test_single_thread_writes_stay_exclusive(registry: RaceRegistry) -> None:
    owner = Owner()
    for _ in range(100):
        registry.note_access(owner, "value")
    assert registry.race_findings() == []


def test_read_only_sharing_is_clean(registry: RaceRegistry) -> None:
    owner = Owner()
    registry.note_access(owner, "value")  # writer initialises...
    for name in ("reader-1", "reader-2"):  # ...then only readers arrive
        run_on_thread(
            lambda: registry.note_access(owner, "value", write=False), name
        )
    assert registry.race_findings() == []


def test_race_is_reported_once_per_touchpoint(registry: RaceRegistry) -> None:
    owner = Owner()
    registry.note_access(owner, "value")
    for round_ in range(3):
        run_on_thread(
            lambda: registry.note_access(owner, "value"), f"racer-{round_}"
        )
    assert len(registry.race_findings()) == 1


def test_inconsistent_locksets_intersect_to_empty(registry: RaceRegistry) -> None:
    owner = Owner()
    lock_a = registry.make_lock("A")
    lock_b = registry.make_lock("B")
    with lock_a:
        registry.note_access(owner, "value")
    run_on_thread(lambda: _locked_write(registry, lock_b, owner))
    assert registry.race_findings() == []  # candidate lockset {B}: not empty
    with lock_a:
        registry.note_access(owner, "value")  # {B} & {A} = {} on a write
    assert len(registry.race_findings()) == 1


def _locked_write(
    registry: RaceRegistry, lock: CheckedLock, owner: object
) -> None:
    with lock:
        registry.note_access(owner, "value")


def test_owner_name_overrides_the_type_label(registry: RaceRegistry) -> None:
    owner = Owner()
    registry.note_access(owner, "hits", owner_name="ServingStatistics")
    run_on_thread(
        lambda: registry.note_access(owner, "hits", owner_name="ServingStatistics")
    )
    assert registry.race_findings()[0].touchpoint == "ServingStatistics.hits"


def test_collected_owner_state_is_forgotten(registry: RaceRegistry) -> None:
    owner = Owner()
    key = (id(owner), "value")
    registry.note_access(owner, "value")
    assert key in registry._vars
    del owner
    gc.collect()
    # A recycled id() must start virgin, not inherit the old lockset.
    assert key not in registry._vars


# ---------------------------------------------------------------------- #
# lock-order graph
# ---------------------------------------------------------------------- #
def test_opposite_order_nesting_reports_one_cycle(registry: RaceRegistry) -> None:
    lock_a = registry.make_lock("order.A")
    lock_b = registry.make_lock("order.B")

    def a_then_b() -> None:
        with lock_a:
            with lock_b:
                pass

    def b_then_a() -> None:
        with lock_b:
            with lock_a:
                pass

    run_on_thread(a_then_b, "order-1")
    run_on_thread(b_then_a, "order-2")
    cycles = registry.deadlock_findings()
    assert len(cycles) == 1
    assert set(cycles[0].cycle) == {"order.A", "order.B"}
    assert "potential deadlock" in cycles[0].format()


def test_cycle_stacks_cover_both_edges() -> None:
    registry = RaceRegistry()  # stacks on
    lock_a = registry.make_lock("A")
    lock_b = registry.make_lock("B")
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        with lock_a:
            pass
    (cycle,) = registry.deadlock_findings()
    assert len(cycle.stacks) == 2
    assert all(cycle.stacks)


def test_consistent_order_has_no_cycle(registry: RaceRegistry) -> None:
    lock_a = registry.make_lock("A")
    lock_b = registry.make_lock("B")
    for _ in range(3):
        with lock_a:
            with lock_b:
                pass
    assert registry.deadlock_findings() == []


def test_three_lock_cycle_is_found_once(registry: RaceRegistry) -> None:
    lock_a = registry.make_lock("A")
    lock_b = registry.make_lock("B")
    lock_c = registry.make_lock("C")
    for first, second in ((lock_a, lock_b), (lock_b, lock_c), (lock_c, lock_a)):
        with first:
            with second:
                pass
    cycles = registry.deadlock_findings()
    assert len(cycles) == 1
    assert set(cycles[0].cycle) == {"A", "B", "C"}


def test_reentrant_rlock_adds_no_self_edge(registry: RaceRegistry) -> None:
    rlock = registry.make_rlock("reentrant")
    with rlock:
        with rlock:
            pass
    assert registry.deadlock_findings() == []


def test_failed_nonblocking_acquire_is_not_recorded(
    registry: RaceRegistry,
) -> None:
    lock = registry.make_lock("contested")
    assert lock.acquire() is True
    result: dict[str, bool] = {}

    def try_acquire() -> None:
        result["ok"] = lock.acquire(blocking=False)

    run_on_thread(try_acquire)
    assert result["ok"] is False
    assert registry.acquire_count == 1  # the miss never joined the graph
    lock.release()


def test_checked_lock_reports_locked_state(registry: RaceRegistry) -> None:
    lock = registry.make_lock("probe")
    assert lock.locked() is False
    with lock:
        assert lock.locked() is True
    assert isinstance(registry.make_rlock("probe-r").locked(), bool)


# ---------------------------------------------------------------------- #
# reporting and reset
# ---------------------------------------------------------------------- #
def test_format_report_clean_and_failed(registry: RaceRegistry) -> None:
    assert "race check clean" in registry.format_report()
    owner = Owner()
    registry.note_access(owner, "value")
    run_on_thread(lambda: registry.note_access(owner, "value"))
    report = registry.format_report()
    assert "race check FAILED" in report
    assert "Owner.value" in report


def test_reset_drops_findings_and_counters(registry: RaceRegistry) -> None:
    owner = Owner()
    registry.note_access(owner, "value")
    run_on_thread(lambda: registry.note_access(owner, "value"))
    assert registry.findings()
    registry.reset()
    assert registry.findings() == []
    assert registry.access_count == 0


def test_run_selfcheck_is_clean() -> None:
    assert run_selfcheck() == []


# ---------------------------------------------------------------------- #
# the instrument seams
# ---------------------------------------------------------------------- #
def test_seams_return_plain_primitives_when_inactive(
    preserved_global_registry: None,
) -> None:
    instrument.disable()
    lock = instrument.make_lock("plain")
    rlock = instrument.make_rlock("plain-r")
    assert not isinstance(lock, CheckedLock)
    assert not isinstance(rlock, CheckedLock)
    with lock:
        pass
    instrument.note_access(object(), "value")  # no-op, must not raise


def test_use_registry_routes_and_restores(
    preserved_global_registry: None,
) -> None:
    instrument.disable()
    private = RaceRegistry(capture_stacks=False)
    with instrument.use_registry(private) as active:
        assert active is private
        assert instrument.active_registry() is private
        lock = instrument.make_lock("bound")
        instrument.note_access(object(), "value")
    assert instrument.active_registry() is None
    # The lock stays bound to the registry that created it for life.
    assert isinstance(lock, CheckedLock)
    before = private.acquire_count
    with lock:
        pass
    assert private.acquire_count == before + 1


def test_enable_reuses_and_disable_clears(
    preserved_global_registry: None,
) -> None:
    instrument.disable()
    first = instrument.enable()
    assert instrument.active_registry() is first
    assert instrument.enable() is first  # idempotent while active
    instrument.disable()
    assert instrument.active_registry() is None


@pytest.mark.parametrize(
    ("value", "expected"),
    [
        ("1", True),
        ("true", True),
        ("YES", True),
        (" on ", True),
        ("0", False),
        ("", False),
        ("off", False),
    ],
)
def test_race_check_requested_env_parsing(
    monkeypatch: pytest.MonkeyPatch, value: str, expected: bool
) -> None:
    monkeypatch.setenv("REPRO_RACE_CHECK", value)
    assert instrument.race_check_requested() is expected
