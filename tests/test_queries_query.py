"""Tests for the Query and answer containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionalityMismatchError, InvalidQueryError
from repro.queries.query import Query, QueryAnswer, QueryResultPair, query_distance


class TestQueryConstruction:
    def test_basic_properties(self):
        query = Query(center=np.array([0.2, 0.4]), radius=0.1)
        assert query.dimension == 2
        assert query.radius == 0.1
        assert query.norm_order == 2.0

    def test_center_is_read_only(self):
        query = Query(center=np.array([0.2, 0.4]), radius=0.1)
        with pytest.raises(ValueError):
            query.center[0] = 9.0

    def test_accepts_list_center(self):
        query = Query(center=[0.1, 0.2, 0.3], radius=0.5)
        assert query.dimension == 3

    @pytest.mark.parametrize("radius", [0.0, -0.5, float("nan"), float("inf")])
    def test_rejects_bad_radius(self, radius):
        with pytest.raises(InvalidQueryError):
            Query(center=np.array([0.0]), radius=radius)

    def test_rejects_non_finite_center(self):
        with pytest.raises(InvalidQueryError):
            Query(center=np.array([np.nan, 0.0]), radius=0.1)

    def test_rejects_matrix_center(self):
        with pytest.raises(InvalidQueryError):
            Query(center=np.ones((2, 2)), radius=0.1)

    def test_rejects_bad_norm(self):
        with pytest.raises(InvalidQueryError):
            Query(center=np.array([0.0]), radius=0.1, norm_order=0.3)


class TestQueryVectorRoundTrip:
    def test_to_vector_layout(self):
        query = Query(center=np.array([0.2, 0.4]), radius=0.1)
        assert np.allclose(query.to_vector(), [0.2, 0.4, 0.1])

    def test_round_trip(self):
        original = Query(center=np.array([0.3, 0.6, 0.9]), radius=0.25)
        rebuilt = Query.from_vector(original.to_vector())
        assert rebuilt.dimension == original.dimension
        assert np.allclose(rebuilt.center, original.center)
        assert rebuilt.radius == pytest.approx(original.radius)

    def test_from_vector_needs_two_components(self):
        with pytest.raises(InvalidQueryError):
            Query.from_vector(np.array([1.0]))


class TestQueryGeometry:
    def test_distance_includes_radius_component(self):
        first = Query(center=np.array([0.0, 0.0]), radius=0.1)
        second = Query(center=np.array([0.0, 0.0]), radius=0.3)
        assert first.distance_to(second) == pytest.approx(0.2)

    def test_distance_to_dimension_mismatch(self):
        first = Query(center=np.array([0.0]), radius=0.1)
        second = Query(center=np.array([0.0, 0.0]), radius=0.1)
        with pytest.raises(DimensionalityMismatchError):
            first.distance_to(second)

    def test_query_distance_helper(self):
        first = Query(center=np.array([0.0]), radius=0.1)
        second = Query(center=np.array([1.0]), radius=0.1)
        assert query_distance(first, second) == pytest.approx(1.0)

    def test_overlaps_and_degree_consistent(self):
        first = Query(center=np.array([0.0, 0.0]), radius=0.2)
        near = Query(center=np.array([0.1, 0.0]), radius=0.2)
        far = Query(center=np.array([5.0, 0.0]), radius=0.2)
        assert first.overlaps(near)
        assert first.overlap_degree(near) > 0.0
        assert not first.overlaps(far)
        assert first.overlap_degree(far) == 0.0

    def test_contains_point(self):
        query = Query(center=np.array([0.5, 0.5]), radius=0.1)
        assert query.contains_point(np.array([0.55, 0.5]))
        assert not query.contains_point(np.array([0.9, 0.9]))


class TestQueryAnswer:
    def test_valid_answer(self):
        answer = QueryAnswer(mean=0.4, cardinality=10)
        assert answer.coefficients is None
        assert answer.r_squared is None

    def test_rejects_negative_cardinality(self):
        with pytest.raises(InvalidQueryError):
            QueryAnswer(mean=0.0, cardinality=-1)

    def test_coefficients_are_read_only(self):
        answer = QueryAnswer(
            mean=0.4, cardinality=10, coefficients=np.array([1.0, 2.0]), r_squared=0.9
        )
        with pytest.raises(ValueError):
            answer.coefficients[0] = 5.0


class TestWithNormOrder:
    def test_returns_self_when_order_matches(self):
        query = Query(center=np.array([0.2, 0.3]), radius=0.1, norm_order=2.0)
        assert query.with_norm_order(2.0) is query

    def test_renorms_immutably(self):
        query = Query(center=np.array([0.2, 0.3]), radius=0.1)
        renormed = query.with_norm_order(float("inf"))
        assert renormed.norm_order == float("inf")
        assert renormed.radius == query.radius
        assert np.array_equal(renormed.center, query.center)
        assert query.norm_order == 2.0

    def test_rejects_invalid_order(self):
        query = Query(center=np.array([0.2]), radius=0.1)
        with pytest.raises(InvalidQueryError):
            query.with_norm_order(0.5)


class TestQueryResultPair:
    def test_valid_pair(self):
        pair = QueryResultPair(Query(center=np.array([0.0]), radius=0.1), answer=1.5)
        assert pair.answer == 1.5
        assert pair.metadata == {}

    def test_rejects_non_finite_answer(self):
        with pytest.raises(InvalidQueryError):
            QueryResultPair(Query(center=np.array([0.0]), radius=0.1), answer=float("nan"))
