"""Tests for the concurrent serving front (`repro.dbms.concurrent`)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.config import ModelConfig, TrainingConfig
from repro.core.model import LLMModel
from repro.data.synthetic import SyntheticDataset
from repro.dbms.concurrent import (
    AnswerCache,
    ConcurrencyPolicy,
    ConcurrentAnalyticsService,
)
from repro.dbms.executor import ExactQueryEngine
from repro.dbms.serving import AnalyticsService
from repro.dbms.sqlfront import AnalyticsSession
from repro.exceptions import (
    ConfigurationError,
    EmptySubspaceError,
    InjectedFaultError,
    ServiceOverloadedError,
    SQLSyntaxError,
)
from repro.testing.faults import FaultInjector

TABLE = "sensors"
OTHER = "turbines"


def _dataset(name: str, size: int = 3_000, seed: int = 0) -> SyntheticDataset:
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(0, 1, size=(size, 2))
    outputs = 1.0 + inputs[:, 0] + 2.0 * inputs[:, 1]
    return SyntheticDataset(
        inputs=inputs, outputs=outputs, name=name, domain=(0.0, 1.0)
    )


def _train_model(engine: ExactQueryEngine, count: int = 250) -> LLMModel:
    from repro.queries.stream import LabelledWorkload
    from repro.queries.workload import (
        QueryWorkloadGenerator,
        RadiusDistribution,
        WorkloadSpec,
    )

    spec = WorkloadSpec(
        dimension=2,
        center_low=0.0,
        center_high=1.0,
        radius=RadiusDistribution(mean=0.1, std=0.02),
        norm_order=2.0,
    )
    queries = QueryWorkloadGenerator(spec, seed=1).generate(count)
    workload = LabelledWorkload.from_queries(queries, engine.mean_value)
    model = LLMModel(
        dimension=2,
        config=ModelConfig(quantization_coefficient=0.15, norm_order=2.0),
        training=TrainingConfig(convergence_threshold=1e-4),
    )
    model.fit(workload)
    return model


@pytest.fixture(scope="module")
def engine() -> ExactQueryEngine:
    return ExactQueryEngine(_dataset(TABLE))


@pytest.fixture(scope="module")
def other_engine() -> ExactQueryEngine:
    return ExactQueryEngine(_dataset(OTHER, seed=7))


@pytest.fixture(scope="module")
def model(engine) -> LLMModel:
    return _train_model(engine)


def _inner(engine, model) -> AnalyticsService:
    return AnalyticsService({TABLE: engine}, {TABLE: model})


def _script(count: int = 6) -> list[str]:
    return [
        f"SELECT AVG(u) FROM {TABLE} WITHIN 0.12 OF "
        f"({0.1 + 0.07 * i:.3f}, {0.15 + 0.06 * i:.3f})"
        for i in range(count)
    ] + [f"SELECT COUNT(*) FROM {TABLE} WITHIN 0.2 OF (0.5, 0.5)"]


class TestConcurrencyPolicy:
    def test_defaults_are_valid(self):
        policy = ConcurrencyPolicy()
        assert policy.max_workers >= 1
        assert 0.0 < policy.coalesce_window_seconds <= 0.005

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_workers": 0},
            {"max_pending_statements": 0},
            {"coalesce_window_seconds": -0.001},
            {"max_batch_statements": 0},
            {"cache_capacity": -1},
            {"cache_ttl_seconds": 0.0},
            {"cache_ttl_seconds": -5.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ConcurrencyPolicy(**kwargs)


class TestAnswerCache:
    def test_lru_eviction_order(self):
        cache = AnswerCache(capacity=2)
        cache.put(("t", 1), "a")
        cache.put(("t", 2), "b")
        assert cache.get(("t", 1)) == "a"  # touch: 1 becomes MRU
        cache.put(("t", 3), "c")  # evicts 2, the LRU
        assert cache.get(("t", 2)) is None
        assert cache.get(("t", 1)) == "a"
        assert cache.get(("t", 3)) == "c"
        assert cache.evictions == 1

    def test_ttl_expiry_with_injected_clock(self):
        now = [0.0]
        cache = AnswerCache(capacity=8, ttl_seconds=1.0, clock=lambda: now[0])
        cache.put(("t", 1), "a")
        assert cache.get(("t", 1)) == "a"
        now[0] = 0.999
        assert cache.get(("t", 1)) == "a"
        now[0] = 1.0
        assert cache.get(("t", 1)) is None  # expired exactly at the TTL
        assert len(cache) == 0

    def test_invalidate_single_table_and_all(self):
        cache = AnswerCache(capacity=8)
        cache.put(("a", 1), "x")
        cache.put(("a", 2), "y")
        cache.put(("b", 1), "z")
        assert cache.invalidate("a") == 2
        assert cache.get(("b", 1)) == "z"
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.invalidations == 3

    def test_hit_miss_counters(self):
        cache = AnswerCache(capacity=2)
        assert cache.get(("t", 1)) is None
        cache.put(("t", 1), "a")
        cache.get(("t", 1))
        assert (cache.hits, cache.misses) == (1, 1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            AnswerCache(capacity=0)


class TestEquivalence:
    """Coalesced / concurrent answers are bit-equal to sequential serving."""

    @pytest.mark.parametrize("mode", ["exact", "model", "hybrid"])
    def test_bit_equal_to_sequential_service(self, engine, model, mode):
        sequential = _inner(engine, model)
        front = ConcurrentAnalyticsService(_inner(engine, model))
        try:
            # COUNT(*) requires exact execution, so drop it in model mode.
            script = _script()[:-1] if mode == "model" else _script()
            reference = sequential.execute_script(script, mode=mode)
            served = front.execute_script(script, mode=mode)
            for got, want in zip(served, reference):
                assert got.value == want.value  # bit-equal, not approx
                assert got.source == want.source
                assert got.empty == want.empty
        finally:
            front.close()
            sequential.close()

    def test_concurrent_submissions_coalesce_and_stay_correct(
        self, engine, model
    ):
        sequential = _inner(engine, model)
        front = ConcurrentAnalyticsService(
            _inner(engine, model),
            policy=ConcurrencyPolicy(coalesce_window_seconds=0.005),
        )
        try:
            script = _script()
            reference = sequential.execute_script(script)
            barrier = threading.Barrier(4)
            outputs: list = [None] * 4

            def run(i: int) -> None:
                barrier.wait()
                outputs[i] = front.execute_script(script)

            threads = [
                threading.Thread(target=run, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for served in outputs:
                for got, want in zip(served, reference):
                    assert got.value == want.value
            stats = front.statistics_for(TABLE)
            assert stats.max_coalesce_width >= 2  # sessions actually merged
            assert stats.coalesced_batches >= 1
            assert stats.p99_seconds > 0.0
        finally:
            front.close()
            sequential.close()

    def test_single_statement_execute_contract(self, engine, model):
        with ConcurrentAnalyticsService(_inner(engine, model)) as front:
            value = front.execute(
                f"SELECT AVG(u) FROM {TABLE} WITHIN 0.15 OF (0.4, 0.4)",
                mode="exact",
            )
            assert isinstance(value, float)
            with pytest.raises(EmptySubspaceError):
                front.execute(
                    f"SELECT AVG(u) FROM {TABLE} WITHIN 0.001 OF (9.0, 9.0)",
                    mode="exact",
                )
            # COUNT over an empty subspace is defined (0), never raises.
            assert (
                front.execute(
                    f"SELECT COUNT(*) FROM {TABLE} WITHIN 0.001 OF (9.0, 9.0)"
                )
                == 0
            )

    def test_parse_and_mode_errors_raise_synchronously(self, engine, model):
        with ConcurrentAnalyticsService(_inner(engine, model)) as front:
            with pytest.raises(SQLSyntaxError):
                front.submit_script(["SELECT nonsense"])
            with pytest.raises(SQLSyntaxError):
                front.submit_script(_script(1), mode="turbo")
            with pytest.raises(ConfigurationError):
                front.submit_script(_script(1), on_error="explode")

    def test_closed_front_rejects_submissions(self, engine, model):
        front = ConcurrentAnalyticsService(_inner(engine, model))
        front.close()
        with pytest.raises(ConfigurationError):
            front.submit_script(_script(1))


class TestAnswerCacheIntegration:
    def test_repeat_traffic_hits_cache_and_skips_execution(
        self, engine, model
    ):
        with ConcurrentAnalyticsService(_inner(engine, model)) as front:
            script = _script()
            first = front.execute_script(script)
            assert not any(r.cached for r in first)
            executed_before = front.service.statistics_for(
                TABLE
            ).statements_executed
            second = front.execute_script(script)
            assert all(r.cached for r in second)
            for got, want in zip(second, first):
                assert got.value == want.value
                assert got.source == want.source  # original source preserved
            # Cache hits never reach the inner service (or its statistics,
            # which is what drift detection reads).
            assert (
                front.service.statistics_for(TABLE).statements_executed
                == executed_before
            )
            stats = front.statistics_for(TABLE)
            assert stats.cache_hits == len(script)
            assert stats.cache_hit_rate > 0.0

    def test_swap_invalidates_cached_answers(self, engine, model):
        with ConcurrentAnalyticsService(_inner(engine, model)) as front:
            script = _script()
            front.execute_script(script)
            assert all(r.cached for r in front.execute_script(script))
            front.swap_model(TABLE, model, version="v2")
            assert len(front.cache) == 0  # eager invalidation on the event
            after = front.execute_script(script)
            assert not any(r.cached for r in after)

    def test_cache_disabled_by_policy(self, engine, model):
        with ConcurrentAnalyticsService(
            _inner(engine, model),
            policy=ConcurrencyPolicy(cache_capacity=0),
        ) as front:
            assert front.cache is None
            script = _script(2)
            front.execute_script(script)
            assert not any(r.cached for r in front.execute_script(script))

    def test_distinct_modes_cached_separately(self, engine, model):
        with ConcurrentAnalyticsService(_inner(engine, model)) as front:
            script = _script(2)[:-1]  # COUNT(*) is exact-only
            front.execute_script(script, mode="exact")
            served = front.execute_script(script, mode="model")
            # A model-mode lookup must not hit the exact-mode entry.
            assert not any(r.cached for r in served)


class TestAdmissionControl:
    def test_overload_rejects_whole_script(self, engine, model):
        injector = FaultInjector()
        from repro.testing.faults import FaultyEngine

        slow = FaultyEngine(engine, injector, name=TABLE)
        injector.arm(
            f"{TABLE}.q1_batch", error=None, delay_seconds=0.2, times=None
        )
        front = ConcurrentAnalyticsService(
            AnalyticsService({TABLE: slow}, {TABLE: model}),
            policy=ConcurrencyPolicy(
                max_pending_statements=4,
                coalesce_window_seconds=0.0,
                cache_capacity=0,
            ),
        )
        try:
            first = front.submit_script(_script(3), mode="exact")
            with pytest.raises(ServiceOverloadedError) as excinfo:
                front.submit_script(_script(3), mode="exact")
            assert excinfo.value.limit == 4
            assert excinfo.value.pending >= 1
            # The admitted script still completes normally.
            results = first.result(timeout=10.0)
            assert all(r.ok for r in results)
            assert front.pending_statements == 0
        finally:
            front.close()

    def test_pending_count_returns_to_zero(self, engine, model):
        with ConcurrentAnalyticsService(_inner(engine, model)) as front:
            front.execute_script(_script())
            assert front.pending_statements == 0


class TestFaultContainment:
    def test_mid_batch_failure_contained_to_its_group(
        self, engine, other_engine, model
    ):
        injector = FaultInjector()
        inner = AnalyticsService(
            {TABLE: engine, OTHER: other_engine}, {TABLE: model}
        )
        front = ConcurrentAnalyticsService(
            inner,
            policy=ConcurrencyPolicy(
                coalesce_window_seconds=0.005, cache_capacity=0
            ),
            injector=injector,
        )
        try:
            injector.arm(
                f"concurrent.flush.{TABLE}", error=InjectedFaultError, times=1
            )
            sensors = [
                f"SELECT AVG(u) FROM {TABLE} WITHIN 0.15 OF (0.3, 0.3)",
                f"SELECT AVG(u) FROM {TABLE} WITHIN 0.15 OF (0.6, 0.6)",
            ]
            turbines = [
                f"SELECT AVG(u) FROM {OTHER} WITHIN 0.15 OF (0.3, 0.3)",
                f"SELECT COUNT(*) FROM {OTHER} WITHIN 0.2 OF (0.5, 0.5)",
            ]
            barrier = threading.Barrier(2)
            outputs: dict[str, list] = {}

            def run(name: str, script: list[str]) -> None:
                barrier.wait()
                outputs[name] = front.execute_script(script, mode="exact")

            threads = [
                threading.Thread(target=run, args=("sensors", sensors)),
                threading.Thread(target=run, args=("turbines", turbines)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # The armed fault killed the sensors flush: every statement of
            # that group answers with an attached error...
            assert all(
                r.source == "error"
                and isinstance(r.error, InjectedFaultError)
                for r in outputs["sensors"]
            )
            # ...while the co-batched other-table statements are untouched.
            assert all(r.ok for r in outputs["turbines"])
            assert front.pending_statements == 0
            # Containment is accounted, not swallowed.
            assert front.statistics_for(TABLE).error_count == len(sensors)
            assert front.statistics_for(OTHER).error_count == 0
        finally:
            front.close()

    def test_flush_errors_never_cached(self, engine, model):
        injector = FaultInjector()
        front = ConcurrentAnalyticsService(
            _inner(engine, model), injector=injector
        )
        try:
            injector.arm("concurrent.flush", error=InjectedFaultError, times=1)
            script = _script(2)[:-1]  # one q1 group: the fault hits all of it
            failed = front.execute_script(script)
            assert all(r.source == "error" for r in failed)
            assert len(front.cache) == 0
            retried = front.execute_script(script)
            assert all(r.ok and not r.cached for r in retried)
        finally:
            front.close()


class TestSessionFacade:
    def test_session_attaches_to_concurrent_front(self, engine, model):
        with ConcurrentAnalyticsService(_inner(engine, model)) as front:
            session = AnalyticsSession(service=front)
            assert TABLE in session.tables
            value = session.execute(
                f"SELECT AVG(u) FROM {TABLE} WITHIN 0.15 OF (0.4, 0.4)"
            )
            assert isinstance(value, float)
            results = session.execute_script(_script(3), mode="hybrid")
            assert all(r.ok for r in results)
            # Two sessions over one front share its answer cache.
            other = AnalyticsSession(service=front)
            again = other.execute_script(_script(3), mode="hybrid")
            assert all(r.cached for r in again)

    def test_front_registry_delegation(self, engine, model):
        with ConcurrentAnalyticsService() as front:
            front.register_engine(TABLE, engine)
            front.register_model(TABLE, model)
            assert front.tables == [TABLE]
            assert front.service.engine_for(TABLE) is engine


class TestScriptFutureClock:
    def test_result_deadline_is_measured_on_injected_clock(self):
        from concurrent.futures import Future
        from concurrent.futures import TimeoutError as FutureTimeoutError

        from repro.dbms.concurrent import ScriptFuture
        from repro.dbms.serving import StatementResult

        answered: Future = Future()
        answered.set_result(
            StatementResult(statement="s", value=1.0, source="exact")
        )
        stuck: Future = Future()  # never resolves

        # First call computes the deadline at t=0; every later reading is
        # far past it, so the stuck future gets a zero remaining wait and
        # times out immediately -- no real sleeping involved.
        ticks = iter([0.0])
        fake_clock = lambda: next(ticks, 1_000.0)  # noqa: E731
        script = ScriptFuture([answered, stuck], "attach", clock=fake_clock)
        import time as _time

        started = _time.monotonic()
        with pytest.raises(FutureTimeoutError):
            script.result(timeout=60.0)
        assert _time.monotonic() - started < 5.0
        assert not script.done()

    def test_submit_script_threads_the_service_clock(self, engine, model):
        import time as _time

        reads = []

        def counting_clock() -> float:
            reads.append(1)
            return _time.monotonic()

        with ConcurrentAnalyticsService(
            _inner(engine, model), clock=counting_clock
        ) as front:
            future = front.submit_script(_script(2))
            assert future._clock is counting_clock
            before = len(reads)
            results = future.result(timeout=30.0)
            # The bounded wait consulted the injected clock, not time.monotonic.
            assert len(reads) > before
        assert all(r.ok for r in results)


class TestShutdownDrain:
    """close() must resolve every ScriptFuture — by result or by a typed
    ServiceClosedError — never leave one hanging."""

    def test_submit_after_close_raises_typed_error(self, engine, model):
        from repro.exceptions import ServiceClosedError

        front = ConcurrentAnalyticsService(_inner(engine, model))
        front.close()
        assert front.closed
        with pytest.raises(ServiceClosedError):
            front.submit_script(_script(1))
        # still catchable as the historical ConfigurationError
        assert issubclass(ServiceClosedError, ConfigurationError)

    def test_close_flushes_buffered_groups(self, engine, model):
        # a coalesce window far longer than the test: without the drain
        # flush, these futures would only resolve at window expiry
        front = ConcurrentAnalyticsService(
            _inner(engine, model),
            policy=ConcurrencyPolicy(
                coalesce_window_seconds=60.0, max_batch_statements=64
            ),
        )
        future = front.submit_script(_script(4))
        assert front.pending_statements > 0
        front.close(drain_seconds=10.0)
        results = future.result(timeout=1.0)
        assert all(r.ok for r in results)
        assert front.pending_statements == 0

    def test_close_waits_for_in_flight_flush(self, engine, model):
        injector = FaultInjector()
        front = ConcurrentAnalyticsService(
            _inner(engine, model),
            policy=ConcurrencyPolicy(coalesce_window_seconds=0.005),
            injector=injector,
        )
        injector.arm("concurrent.flush", error=None, delay_seconds=0.2, times=1)
        future = front.submit_script(_script(2))
        front.close(drain_seconds=10.0)
        # the slow flush was allowed to finish inside the drain budget
        assert all(r.ok for r in future.result(timeout=1.0))

    def test_straggler_gets_typed_error_never_hangs(self, engine, model):
        from repro.exceptions import ServiceClosedError

        injector = FaultInjector()
        front = ConcurrentAnalyticsService(
            _inner(engine, model),
            policy=ConcurrencyPolicy(coalesce_window_seconds=0.005),
            injector=injector,
        )
        injector.arm("concurrent.flush", error=None, delay_seconds=5.0, times=1)
        future = front.submit_script(_script(2))
        # drain budget far below the flush latency: the future must still
        # resolve promptly, with the typed shutdown error
        front.close(drain_seconds=0.05)
        with pytest.raises(ServiceClosedError):
            future.result(timeout=2.0)

    def test_close_is_idempotent_and_concurrent_safe(self, engine, model):
        front = ConcurrentAnalyticsService(_inner(engine, model))
        front.execute_script(_script(2))
        threads = [
            threading.Thread(target=front.close, kwargs={"drain_seconds": 1.0})
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        front.close()  # and again, after the race
        assert front.closed
