"""Tests for the exact Q1/Q2 query executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ols import OLSRegressor
from repro.data.synthetic import SyntheticDataset
from repro.dbms.executor import ExactQueryEngine, ExecutionStatistics
from repro.dbms.storage import SQLiteDataStore
from repro.exceptions import EmptySubspaceError, StorageError
from repro.queries.geometry import pairwise_lp_distance
from repro.queries.query import Query


@pytest.fixture(scope="module")
def linear_dataset() -> SyntheticDataset:
    rng = np.random.default_rng(0)
    inputs = rng.uniform(0, 1, size=(3_000, 2))
    outputs = 2.0 + 3.0 * inputs[:, 0] - 1.0 * inputs[:, 1]
    return SyntheticDataset(inputs=inputs, outputs=outputs, name="linear2d", domain=(0.0, 1.0))


@pytest.fixture(scope="module")
def engine(linear_dataset) -> ExactQueryEngine:
    return ExactQueryEngine(linear_dataset)


class TestSelection:
    def test_selection_matches_brute_force(self, engine, linear_dataset):
        query = Query(center=np.array([0.4, 0.6]), radius=0.2)
        inputs, outputs = engine.select_subspace(query)
        distances = pairwise_lp_distance(linear_dataset.inputs, query.center)
        expected = int(np.sum(distances <= query.radius))
        assert inputs.shape[0] == expected == outputs.shape[0]

    def test_indexed_and_unindexed_agree(self, linear_dataset):
        indexed = ExactQueryEngine(linear_dataset, use_index=True)
        scan = ExactQueryEngine(linear_dataset, use_index=False)
        query = Query(center=np.array([0.5, 0.5]), radius=0.15)
        a = indexed.execute_q1(query)
        b = scan.execute_q1(query)
        assert a.mean == pytest.approx(b.mean)
        assert a.cardinality == b.cardinality

    def test_cardinality(self, engine):
        query = Query(center=np.array([0.5, 0.5]), radius=0.1)
        assert engine.cardinality(query) == engine.execute_q1(query).cardinality

    def test_dimension_mismatch(self, engine):
        with pytest.raises(StorageError):
            engine.select_subspace(Query(center=np.array([0.5]), radius=0.1))


class TestQ1:
    def test_mean_value_matches_numpy(self, engine, linear_dataset):
        query = Query(center=np.array([0.3, 0.3]), radius=0.2)
        distances = pairwise_lp_distance(linear_dataset.inputs, query.center)
        mask = distances <= query.radius
        expected = float(np.mean(linear_dataset.outputs[mask]))
        assert engine.execute_q1(query).mean == pytest.approx(expected)

    def test_empty_subspace_raises(self, engine):
        query = Query(center=np.array([5.0, 5.0]), radius=0.01)
        with pytest.raises(EmptySubspaceError):
            engine.execute_q1(query)

    def test_mean_value_oracle(self, engine):
        query = Query(center=np.array([0.5, 0.5]), radius=0.2)
        assert engine.mean_value(query) == pytest.approx(engine.execute_q1(query).mean)


class TestQ2:
    def test_recovers_linear_coefficients(self, engine):
        query = Query(center=np.array([0.5, 0.5]), radius=0.3)
        answer = engine.execute_q2(query)
        assert answer.coefficients is not None
        intercept, slope = answer.coefficients[0], answer.coefficients[1:]
        assert intercept == pytest.approx(2.0, abs=1e-6)
        assert np.allclose(slope, [3.0, -1.0], atol=1e-6)
        assert answer.r_squared == pytest.approx(1.0)

    def test_q2_empty_subspace_raises(self, engine):
        with pytest.raises(EmptySubspaceError):
            engine.execute_q2(Query(center=np.array([9.0, 9.0]), radius=0.01))

    def test_q2_agrees_with_direct_ols(self, engine):
        query = Query(center=np.array([0.4, 0.4]), radius=0.25)
        inputs, outputs = engine.select_subspace(query)
        direct = OLSRegressor().fit(inputs, outputs)
        answer = engine.execute_q2(query)
        assert np.allclose(answer.coefficients, direct.coefficients)


class TestQ1Batch:
    def test_on_empty_raise(self, engine):
        queries = [
            Query(center=np.array([0.5, 0.5]), radius=0.2),
            Query(center=np.array([5.0, 5.0]), radius=0.01),
        ]
        with pytest.raises(EmptySubspaceError):
            engine.execute_q1_batch(queries)

    def test_on_empty_null_keeps_alignment(self, engine):
        queries = [
            Query(center=np.array([0.5, 0.5]), radius=0.2),
            Query(center=np.array([5.0, 5.0]), radius=0.01),
            Query(center=np.array([0.3, 0.3]), radius=0.2),
        ]
        answers = engine.execute_q1_batch(queries, on_empty="null")
        assert len(answers) == 3
        assert answers[0] is not None and answers[2] is not None
        assert answers[1] is None

    def test_invalid_on_empty(self, engine):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            engine.execute_q1_batch([], on_empty="skip")

    def test_empty_batch(self, engine):
        assert engine.execute_q1_batch([]) == []

    def test_dimension_mismatch(self, engine):
        with pytest.raises(StorageError):
            engine.execute_q1_batch([Query(center=np.array([0.5]), radius=0.1)])

    def test_batch_statistics_are_amortised(self, linear_dataset):
        engine = ExactQueryEngine(linear_dataset)
        queries = [
            Query(center=np.array([0.5, 0.5]), radius=0.2),
            Query(center=np.array([0.4, 0.4]), radius=0.2),
            Query(center=np.array([0.6, 0.6]), radius=0.2),
        ]
        engine.execute_q1_batch(queries)
        stats = engine.statistics
        assert stats.queries_executed == 3
        assert stats.mean_seconds > 0.0
        assert stats.total_seconds == pytest.approx(stats.mean_seconds * 3)
        # Batched recording amortises one wall-clock over the whole batch.
        assert stats.min_seconds == pytest.approx(stats.max_seconds)


class TestStatistics:
    def test_statistics_accumulate(self, linear_dataset):
        engine = ExactQueryEngine(linear_dataset)
        assert engine.statistics.queries_executed == 0
        engine.execute_q1(Query(center=np.array([0.5, 0.5]), radius=0.2))
        engine.execute_q1(Query(center=np.array([0.4, 0.4]), radius=0.2))
        stats = engine.statistics
        assert stats.queries_executed == 2
        assert stats.rows_selected > 0
        assert stats.total_seconds > 0.0
        assert stats.mean_seconds > 0.0
        assert 0.0 < stats.min_seconds <= stats.max_seconds

    def test_running_aggregates_are_constant_memory(self):
        stats = ExecutionStatistics()
        for index in range(9_999):
            stats.record(10, 5, 0.001 * (1 + index % 3))
        assert stats.queries_executed == 9_999
        assert stats.min_seconds == pytest.approx(0.001)
        assert stats.max_seconds == pytest.approx(0.003)
        assert stats.mean_seconds == pytest.approx(0.002)
        # No per-query containers anywhere in the instance state.
        assert not any(
            isinstance(value, (list, dict, np.ndarray))
            for value in vars(stats).values()
        )

    def test_merge_and_snapshot(self):
        first = ExecutionStatistics()
        first.record(100, 10, 0.01)
        second = ExecutionStatistics()
        second.record(200, 20, 0.03)
        frozen = first.snapshot()
        first.merge(second)
        assert first.queries_executed == 2
        assert first.rows_scanned == 300
        assert first.rows_selected == 30
        assert first.total_seconds == pytest.approx(0.04)
        assert first.min_seconds == pytest.approx(0.01)
        assert first.max_seconds == pytest.approx(0.03)
        # The snapshot is independent of later mutation.
        assert frozen.queries_executed == 1
        assert frozen.total_seconds == pytest.approx(0.01)

    def test_merge_with_unused_statistics_keeps_extrema(self):
        used = ExecutionStatistics()
        used.record(10, 5, 0.02)
        used.merge(ExecutionStatistics())
        assert used.queries_executed == 1
        assert used.min_seconds == pytest.approx(0.02)
        assert used.max_seconds == pytest.approx(0.02)

    def test_per_query_seconds_removed(self):
        # The deprecated raw-latency accessor (warning shipped two releases
        # ago) is gone for good; the O(1) aggregates are the only surface.
        stats = ExecutionStatistics()
        stats.record(10, 5, 0.01)
        assert not hasattr(stats, "per_query_seconds")

    def test_empty_statistics_read_as_zero(self):
        stats = ExecutionStatistics()
        assert stats.mean_seconds == 0.0
        assert stats.min_seconds == 0.0
        assert stats.max_seconds == 0.0

    def test_reset(self):
        stats = ExecutionStatistics()
        stats.record(10, 5, 0.01)
        stats.reset()
        assert stats.queries_executed == 0
        assert stats.mean_seconds == 0.0
        assert stats.min_seconds == 0.0


class TestFromStore:
    def test_engine_from_sqlite_store(self, linear_dataset):
        with SQLiteDataStore(":memory:") as store:
            store.load_dataset(linear_dataset)
            engine = ExactQueryEngine.from_store(store, "linear2d")
        query = Query(center=np.array([0.5, 0.5]), radius=0.2)
        direct = ExactQueryEngine(linear_dataset).execute_q1(query)
        via_store = engine.execute_q1(query)
        assert via_store.mean == pytest.approx(direct.mean)
        assert via_store.cardinality == direct.cardinality
