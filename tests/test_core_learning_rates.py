"""Tests for the learning-rate schedules."""

from __future__ import annotations

import pytest

from repro.core.learning_rates import (
    ConstantRate,
    HyperbolicRate,
    PowerRate,
    get_schedule,
)
from repro.exceptions import ConfigurationError


class TestHyperbolicRate:
    def test_matches_paper_schedule(self):
        schedule = HyperbolicRate()
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(1) == pytest.approx(0.5)
        assert schedule(9) == pytest.approx(0.1)

    def test_is_decreasing(self):
        schedule = HyperbolicRate()
        values = [schedule(t) for t in range(100)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_scale(self):
        assert HyperbolicRate(scale=0.5)(0) == pytest.approx(0.5)

    def test_satisfies_robbins_monro(self):
        assert HyperbolicRate().satisfies_robbins_monro()

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            HyperbolicRate(scale=0.0)

    def test_rejects_negative_step(self):
        with pytest.raises(ConfigurationError):
            HyperbolicRate()(-1)


class TestConstantRate:
    def test_constant_value(self):
        schedule = ConstantRate(0.1)
        assert schedule(0) == schedule(1_000) == pytest.approx(0.1)

    def test_not_robbins_monro(self):
        assert not ConstantRate(0.1).satisfies_robbins_monro()

    @pytest.mark.parametrize("value", [0.0, 1.5, -0.1])
    def test_rejects_bad_value(self, value):
        with pytest.raises(ConfigurationError):
            ConstantRate(value)


class TestPowerRate:
    def test_decay(self):
        schedule = PowerRate(exponent=0.6)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(99) == pytest.approx(100 ** -0.6)

    def test_robbins_monro_depends_on_exponent(self):
        assert PowerRate(exponent=0.75).satisfies_robbins_monro()
        assert not PowerRate(exponent=0.4).satisfies_robbins_monro()
        assert not PowerRate(exponent=1.5).satisfies_robbins_monro()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            PowerRate(exponent=0.0)
        with pytest.raises(ConfigurationError):
            PowerRate(scale=-1.0)


class TestClamping:
    def test_values_clamped_to_unit_interval(self):
        # A large scale would exceed 1 at step 0; the call clamps it.
        schedule = HyperbolicRate(scale=10.0)
        assert schedule(0) == 1.0


class TestRegistry:
    def test_get_schedule_by_name(self):
        assert isinstance(get_schedule("hyperbolic"), HyperbolicRate)
        assert isinstance(get_schedule("constant", scale=0.2), ConstantRate)
        assert isinstance(get_schedule("power"), PowerRate)

    def test_unknown_schedule(self):
        with pytest.raises(ConfigurationError):
            get_schedule("unknown")
