"""Unified benchmark harness: configs, store, runner, regression gates."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import (
    BenchmarkRunner,
    BenchmarkSpec,
    Direction,
    ExperimentConfig,
    RegressionDetector,
    RegressionPolicy,
    ResultsStore,
    RunRecord,
    canonicalize,
    environment_key,
    render_report,
)
from repro.bench.cli import main as bench_main
from repro.bench.registry import discover_specs
from repro.exceptions import ConfigurationError

ENV_A = {
    "platform": "linux",
    "machine": "x86_64",
    "cpu_count": 2,
    "python": "3.11.7",
    "numpy": "1.26.0",
}
ENV_B = {**ENV_A, "cpu_count": 16, "machine": "arm64"}


def _record(
    value: float,
    *,
    config_id: str = "c0",
    metric: str = "qps",
    direction: str = "higher",
    environment: dict = ENV_A,
    gate_failures: tuple = (),
    timestamp: str = "2026-01-01T00:00:00+00:00",
    extra_metrics: dict | None = None,
    extra_directions: dict | None = None,
) -> RunRecord:
    metrics = {metric: value, **(extra_metrics or {})}
    directions = {metric: direction, **(extra_directions or {})}
    return RunRecord(
        config_id=config_id,
        benchmark="toy",
        label="full",
        parameters={"n": 1},
        metrics=metrics,
        metric_directions=directions,
        gate_failures=gate_failures,
        environment=environment,
        git_sha="abc123",
        timestamp=timestamp,
    )


def _toy_spec(**kwargs) -> BenchmarkSpec:
    defaults = dict(
        name="toy",
        title="Toy benchmark",
        artifact="toy",
        run=lambda n=4, scale=1.0: {"qps": 100.0 * n * scale, "dev": 0.0},
        metrics={"qps": "higher", "dev": "info"},
        default_params={"n": 4, "scale": 1.0},
        smoke_params={"n": 1},
    )
    defaults.update(kwargs)
    return BenchmarkSpec(**defaults)


# --------------------------------------------------------------------- #
# ExperimentConfig: stable content-hash identity
# --------------------------------------------------------------------- #
class TestExperimentConfig:
    def test_identity_is_stable_across_spellings(self):
        base = ExperimentConfig("serving", {"n": 10, "workers": (1, 2)})
        reordered = ExperimentConfig("serving", {"workers": [1, 2], "n": 10})
        assert base.config_id == reordered.config_id
        assert len(base.config_id) == 12
        int(base.config_id, 16)  # hex digest prefix

    def test_label_is_excluded_from_identity(self):
        full = ExperimentConfig("serving", {"n": 10}, label="full")
        renamed = ExperimentConfig("serving", {"n": 10}, label="smoke")
        assert full.config_id == renamed.config_id

    def test_parameters_change_identity(self):
        a = ExperimentConfig("serving", {"n": 10})
        b = ExperimentConfig("serving", {"n": 11})
        c = ExperimentConfig("training", {"n": 10})
        assert len({a.config_id, b.config_id, c.config_id}) == 3

    def test_numpy_scalars_canonicalise(self):
        plain = ExperimentConfig("toy", {"n": 10, "rate": 0.5})
        numpyed = ExperimentConfig(
            "toy", {"n": np.int64(10), "rate": np.float64(0.5)}
        )
        assert plain.config_id == numpyed.config_id

    def test_sets_and_exotic_types_are_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig("toy", {"bad": {1, 2}})
        with pytest.raises(ConfigurationError):
            canonicalize(object())

    def test_empty_benchmark_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig("")


# --------------------------------------------------------------------- #
# RunRecord: normalisation + JSON round trip
# --------------------------------------------------------------------- #
class TestRunRecord:
    def test_json_round_trip(self):
        record = _record(123.4, gate_failures=("too slow",))
        clone = RunRecord.from_dict(json.loads(record.to_json()))
        assert clone.to_dict() == record.to_dict()
        assert not clone.ok

    def test_unknown_direction_rejected(self):
        with pytest.raises(ConfigurationError):
            _record(1.0, direction="sideways")

    def test_environment_key_ignores_library_patch_versions(self):
        bumped = {**ENV_A, "numpy": "1.27.9"}
        assert environment_key(ENV_A) == environment_key(bumped)
        assert environment_key(ENV_A) != environment_key(ENV_B)
        assert _record(1.0).environment_key == environment_key(ENV_A)

    def test_undeclared_metric_direction_defaults_to_info(self):
        record = _record(1.0, extra_metrics={"mystery": 5.0})
        assert record.direction_of("mystery") == Direction.INFO


# --------------------------------------------------------------------- #
# ResultsStore: JSONL append/load
# --------------------------------------------------------------------- #
class TestResultsStore:
    def test_append_load_round_trip_in_order(self, tmp_path):
        store = ResultsStore(tmp_path / "store.jsonl")
        for value in (1.0, 2.0, 3.0):
            store.append(_record(value))
        loaded = store.load()
        assert [r.metrics["qps"] for r in loaded] == [1.0, 2.0, 3.0]
        assert len(store) == 3

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultsStore(tmp_path / "absent.jsonl").load() == []

    def test_malformed_lines_are_skipped_and_counted(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultsStore(path)
        store.append(_record(1.0))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{truncated garbage\n")
            handle.write('{"valid_json": "but not a record"}\n')
            handle.write("\n")
        store.append(_record(2.0))
        loaded = store.load()
        assert [r.metrics["qps"] for r in loaded] == [1.0, 2.0]
        assert store.skipped_lines == 2

    def test_interleaved_writers_never_tear_a_line(self, tmp_path):
        """Concurrent appenders may interleave *lines* but never bytes.

        Each writer opens its own descriptor (as separate benchmark
        processes would) and appends records big enough to cross any
        stdio buffer; every line must load back intact.
        """
        import threading

        path = tmp_path / "store.jsonl"
        writers, per_writer = 6, 40
        errors: list[BaseException] = []

        def run(worker: int) -> None:
            try:
                own = ResultsStore(path)  # its own fd per append
                for i in range(per_writer):
                    own.append(
                        _record(
                            float(worker * per_writer + i),
                            config_id=f"w{worker}",
                            extra_metrics={"pad": float(i)},
                        )
                    )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(w,)) for w in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        store = ResultsStore(path)
        loaded = store.load()
        assert store.skipped_lines == 0  # no torn lines
        assert len(loaded) == writers * per_writer
        values = {r.metrics["qps"] for r in loaded}
        assert len(values) == writers * per_writer

    def test_trajectory_filters_by_config_and_environment(self, tmp_path):
        store = ResultsStore(tmp_path / "store.jsonl")
        store.append(_record(1.0, config_id="a"))
        store.append(_record(2.0, config_id="b"))
        store.append(_record(3.0, config_id="a", environment=ENV_B))
        assert [r.metrics["qps"] for r in store.trajectory("a")] == [1.0, 3.0]
        key_a = environment_key(ENV_A)
        assert [
            r.metrics["qps"] for r in store.trajectory("a", key_a)
        ] == [1.0]
        assert store.config_ids() == ["a", "b"]


# --------------------------------------------------------------------- #
# BenchmarkRunner: config -> record
# --------------------------------------------------------------------- #
class TestBenchmarkRunner:
    def test_execute_produces_normalised_record(self):
        spec = _toy_spec(
            check=lambda result, params: (
                ["too slow"] if result["qps"] < 250 else []
            ),
        )
        ticks = iter([10.0, 10.5])
        runner = BenchmarkRunner(
            {"toy": spec},
            environment=ENV_A,
            duration_clock=lambda: next(ticks),
        )
        record, result = runner.execute(
            spec.config("full"), git_sha="deadbeef", timestamp="t0"
        )
        assert record.metrics == {"qps": 400.0, "dev": 0.0}
        assert result["qps"] == 400.0
        assert record.ok
        assert record.git_sha == "deadbeef" and record.timestamp == "t0"
        assert record.duration_seconds == pytest.approx(0.5)
        assert record.config_id == spec.config("smoke", n=4).config_id

    def test_gate_failures_are_recorded_not_raised(self):
        spec = _toy_spec(check=lambda result, params: ["always failing"])
        runner = BenchmarkRunner({"toy": spec}, environment=ENV_A)
        record, _ = runner.execute(spec.config("smoke"))
        assert record.gate_failures == ("always failing",)

    def test_smoke_config_applies_overrides_on_defaults(self):
        spec = _toy_spec()
        smoke = spec.config("smoke")
        assert smoke.parameters == {"n": 1, "scale": 1.0}
        assert smoke.label == "smoke"
        assert smoke.config_id != spec.config("full").config_id

    def test_unknown_benchmark_rejected(self):
        runner = BenchmarkRunner({"toy": _toy_spec()}, environment=ENV_A)
        with pytest.raises(ConfigurationError):
            runner.execute(ExperimentConfig("nope"))

    def test_spec_rejects_unknown_metric_direction(self):
        with pytest.raises(ConfigurationError):
            _toy_spec(metrics={"qps": "sideways"})


# --------------------------------------------------------------------- #
# RegressionDetector: rolling baseline
# --------------------------------------------------------------------- #
class TestRegressionDetector:
    def _verdict(self, records, **policy):
        detector = RegressionDetector(RegressionPolicy(**policy))
        verdicts = detector.evaluate(records)
        assert len(verdicts) == 1
        return verdicts[0]

    def test_drop_beyond_threshold_regresses(self):
        verdict = self._verdict([_record(100.0), _record(100.0), _record(80.0)])
        (metric,) = verdict.regressions
        assert metric.metric == "qps"
        assert metric.change == pytest.approx(-0.2)
        assert not verdict.ok

    def test_small_drop_within_tolerance_passes(self):
        verdict = self._verdict([_record(100.0), _record(95.0)])
        assert not verdict.regressions
        assert verdict.verdicts[0].status == "ok"

    def test_lower_direction_gates_rises(self):
        records = [
            _record(0.10, metric="rate", direction="lower"),
            _record(0.15, metric="rate", direction="lower"),
        ]
        verdict = self._verdict(records)
        assert verdict.regressions
        # And a drop of a lower-direction metric is an improvement.
        improving = self._verdict(
            [
                _record(0.10, metric="rate", direction="lower"),
                _record(0.05, metric="rate", direction="lower"),
            ]
        )
        assert improving.verdicts[0].status == "improved"

    def test_info_metrics_are_never_gated(self):
        verdict = self._verdict(
            [_record(100.0, direction="info"), _record(1.0, direction="info")]
        )
        assert not verdict.regressions
        assert verdict.verdicts[0].status == "info"

    def test_zero_baseline_is_skipped_not_divided(self):
        verdict = self._verdict([_record(0.0), _record(5.0)])
        assert verdict.verdicts[0].status == "skipped"
        assert not verdict.regressions

    def test_first_run_has_no_baseline_and_passes_as_new(self):
        verdict = self._verdict([_record(50.0)])
        assert verdict.baseline_runs == 0
        assert verdict.verdicts[0].status == "new"
        assert verdict.ok

    def test_environments_do_not_share_baselines(self):
        records = [
            _record(1000.0),  # a fast machine's history (ENV_A)
            _record(1000.0),
            _record(100.0, environment=ENV_B),  # first run on a slow box
        ]
        verdicts = RegressionDetector().evaluate(records)
        by_env = {v.environment_key: v for v in verdicts}
        slow = by_env[environment_key(ENV_B)]
        assert slow.baseline_runs == 0
        assert slow.verdicts[0].status == "new"
        assert slow.ok

    def test_rolling_window_forgets_old_runs(self):
        # Ancient 1000-qps runs would flag the 90; a window of 2 prior
        # runs (both ~100) must not.
        records = [
            _record(1000.0),
            _record(1000.0),
            _record(100.0),
            _record(100.0),
            _record(95.0),
        ]
        verdict = self._verdict(records, baseline_window=2)
        assert verdict.baseline_runs == 2
        assert verdict.verdicts[0].status == "ok"

    def test_min_baseline_runs_defers_gating(self):
        verdict = self._verdict(
            [_record(100.0), _record(10.0)], min_baseline_runs=3
        )
        assert verdict.verdicts[0].status == "new"


# --------------------------------------------------------------------- #
# report command: markdown + exit codes
# --------------------------------------------------------------------- #
class TestReportCommand:
    def test_render_marks_regressions(self):
        records = [_record(100.0), _record(80.0)]
        policy = RegressionPolicy()
        verdicts = RegressionDetector(policy).evaluate(records)
        text = render_report(records, verdicts, policy)
        assert "REGRESSION" in text and "`qps`" in text
        assert "| benchmark | label |" in text  # markdown summary table

    def test_cli_exits_nonzero_on_seeded_synthetic_regression(
        self, tmp_path, capsys
    ):
        store = ResultsStore(tmp_path / "store.jsonl")
        for value in (100.0, 102.0, 98.0):
            store.append(_record(value))
        store.append(_record(80.0))  # injected >10% throughput drop
        code = bench_main(["report", "--store", str(store.path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSED" in out and "REGRESSION" in out

    def test_cli_passes_on_healthy_trajectory(self, tmp_path, capsys):
        store = ResultsStore(tmp_path / "store.jsonl")
        for value in (100.0, 102.0, 99.0):
            store.append(_record(value))
        code = bench_main(["report", "--store", str(store.path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "no regressions" in out

    def test_cli_gates_latest_headline_failures(self, tmp_path, capsys):
        store = ResultsStore(tmp_path / "store.jsonl")
        store.append(_record(100.0))
        store.append(_record(100.0, gate_failures=("deviation exceeded",)))
        code = bench_main(["report", "--store", str(store.path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "GATE FAILURE" in out

    def test_cli_threshold_is_tunable(self, tmp_path):
        store = ResultsStore(tmp_path / "store.jsonl")
        store.append(_record(100.0))
        store.append(_record(80.0))
        assert (
            bench_main(
                ["report", "--store", str(store.path), "--threshold", "0.3"]
            )
            == 0
        )

    def test_empty_store_reports_cleanly(self, tmp_path, capsys):
        code = bench_main(["report", "--store", str(tmp_path / "none.jsonl")])
        assert code == 0
        assert "empty" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# Discovery + a tiny real benchmark through the full pipeline
# --------------------------------------------------------------------- #
class TestPortedBenchmarks:
    EXPECTED = {
        "batch_throughput",
        "shard_scaling",
        "training_throughput",
        "serving",
        "lifecycle",
        "concurrent",
    }

    def test_all_six_benchmarks_are_discovered(self):
        specs = discover_specs()
        assert self.EXPECTED <= set(specs)
        for name in self.EXPECTED:
            spec = specs[name]
            assert spec.config("full").config_id != spec.config("smoke").config_id
            assert spec.metrics  # every ported spec declares its metrics

    def test_tiny_batch_throughput_flows_through_runner_and_store(
        self, tmp_path
    ):
        specs = discover_specs()
        spec = specs["batch_throughput"]
        config = spec.config(
            "tiny",
            batch_size=50,
            dataset_size=500,
            training_queries=60,
            exact_queries=30,
            repetitions=1,
        )
        runner = BenchmarkRunner({spec.name: spec})
        record, result = runner.execute(
            config, git_sha="test", timestamp="2026-01-01T00:00:00+00:00"
        )
        store = ResultsStore(tmp_path / "store.jsonl")
        store.append(record)
        (loaded,) = store.trajectory(config.config_id)
        assert loaded.benchmark == "batch_throughput"
        assert loaded.metrics["q1_batch_qps"] > 0
        assert loaded.metric_directions["q1_batch_qps"] == "higher"
        # The raw result keeps the script's full nested structure.
        assert result["setup"]["dataset_size"] == 500
        # And the stored record reloads into the regression detector.
        verdicts = RegressionDetector().evaluate(store.load())
        assert verdicts[0].verdicts and verdicts[0].baseline_runs == 0
