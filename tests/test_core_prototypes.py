"""Tests for the local linear map containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.prototypes import LocalLinearMap, LocalModelParameters, RegressionPlane
from repro.exceptions import DimensionalityMismatchError, InvalidQueryError
from repro.queries.query import Query


class TestRegressionPlane:
    def test_prediction(self):
        plane = RegressionPlane(
            intercept=1.0,
            slope=np.array([2.0, -1.0]),
            prototype_center=np.array([0.5, 0.5]),
            prototype_radius=0.1,
        )
        assert plane.predict(np.array([1.0, 1.0])) == pytest.approx(2.0)
        batch = plane.predict(np.array([[0.0, 0.0], [1.0, 0.0]]))
        assert np.allclose(batch, [1.0, 3.0])

    def test_coefficients_layout(self):
        plane = RegressionPlane(
            intercept=0.5,
            slope=np.array([1.0]),
            prototype_center=np.array([0.0]),
            prototype_radius=0.1,
        )
        assert np.allclose(plane.coefficients(), [0.5, 1.0])

    def test_dimension_mismatch(self):
        plane = RegressionPlane(
            intercept=0.0,
            slope=np.array([1.0, 1.0]),
            prototype_center=np.array([0.0, 0.0]),
            prototype_radius=0.1,
        )
        with pytest.raises(DimensionalityMismatchError):
            plane.predict(np.array([1.0]))

    def test_slope_center_mismatch_rejected(self):
        with pytest.raises(DimensionalityMismatchError):
            RegressionPlane(
                intercept=0.0,
                slope=np.array([1.0]),
                prototype_center=np.array([0.0, 0.0]),
                prototype_radius=0.1,
            )


class TestLocalLinearMap:
    def test_construction_from_query(self):
        query = Query(center=np.array([0.2, 0.8]), radius=0.1)
        llm = LocalLinearMap.from_query(query, answer=0.7)
        assert llm.dimension == 2
        assert llm.mean_output == pytest.approx(0.7)
        assert np.allclose(llm.center, [0.2, 0.8])
        assert llm.radius == pytest.approx(0.1)
        assert np.allclose(llm.slope, 0.0)

    def test_rejects_scalar_prototype(self):
        with pytest.raises(InvalidQueryError):
            LocalLinearMap(prototype=np.array([1.0]))

    def test_rejects_mismatched_slope(self):
        with pytest.raises(DimensionalityMismatchError):
            LocalLinearMap(prototype=np.array([0.0, 0.0, 0.1]), slope=np.array([1.0]))

    def test_evaluate_at_prototype_returns_mean(self):
        llm = LocalLinearMap(
            prototype=np.array([0.5, 0.5, 0.1]),
            mean_output=0.3,
            slope=np.array([1.0, -1.0, 0.5]),
        )
        assert llm.evaluate(np.array([0.5, 0.5, 0.1])) == pytest.approx(0.3)

    def test_evaluate_linearity(self):
        llm = LocalLinearMap(
            prototype=np.array([0.0, 0.0, 0.1]),
            mean_output=1.0,
            slope=np.array([2.0, 0.0, 3.0]),
        )
        assert llm.evaluate(np.array([0.5, 0.0, 0.1])) == pytest.approx(2.0)
        assert llm.evaluate(np.array([0.0, 0.0, 0.2])) == pytest.approx(1.3)

    def test_evaluate_query_object(self):
        llm = LocalLinearMap(prototype=np.array([0.0, 0.0, 0.1]), mean_output=0.5)
        assert llm.evaluate_query(
            Query(center=np.array([0.3, 0.3]), radius=0.1)
        ) == pytest.approx(0.5)

    def test_evaluate_at_own_radius_ignores_radius_slope(self):
        llm = LocalLinearMap(
            prototype=np.array([0.0, 0.1]),
            mean_output=1.0,
            slope=np.array([2.0, 100.0]),
        )
        assert llm.evaluate_at_own_radius(np.array([0.5])) == pytest.approx(2.0)

    def test_distance_to(self):
        llm = LocalLinearMap(prototype=np.array([0.0, 0.0, 0.1]))
        assert llm.distance_to(np.array([0.0, 0.0, 0.1])) == 0.0
        assert llm.distance_to(np.array([3.0, 4.0, 0.1])) == pytest.approx(5.0)

    def test_regression_plane_matches_theorem_three(self):
        # Theorem 3: slope is b_{X,k}, intercept is y_k - b_{X,k} x_k^T.
        llm = LocalLinearMap(
            prototype=np.array([0.5, 0.25, 0.1]),
            mean_output=2.0,
            slope=np.array([3.0, -2.0, 0.7]),
        )
        plane = llm.regression_plane()
        assert np.allclose(plane.slope, [3.0, -2.0])
        assert plane.intercept == pytest.approx(2.0 - (3.0 * 0.5 - 2.0 * 0.25))
        # The plane and the LLM agree at the prototype center.
        assert plane.predict(llm.center) == pytest.approx(llm.mean_output)

    def test_shift_operations(self):
        llm = LocalLinearMap(prototype=np.array([0.0, 0.0, 0.1]))
        llm.shift_prototype(np.array([0.1, 0.0, 0.0]))
        llm.shift_slope(np.array([0.0, 0.5, 0.0]))
        llm.shift_mean_output(0.25)
        assert np.allclose(llm.prototype, [0.1, 0.0, 0.1])
        assert np.allclose(llm.slope, [0.0, 0.5, 0.0])
        assert llm.mean_output == pytest.approx(0.25)

    def test_serialisation_round_trip(self):
        llm = LocalLinearMap(
            prototype=np.array([0.1, 0.2, 0.3]),
            mean_output=0.4,
            slope=np.array([0.5, 0.6, 0.7]),
        )
        llm.updates = 9
        rebuilt = LocalLinearMap.from_dict(llm.to_dict())
        assert np.allclose(rebuilt.prototype, llm.prototype)
        assert np.allclose(rebuilt.slope, llm.slope)
        assert rebuilt.mean_output == pytest.approx(llm.mean_output)
        assert rebuilt.updates == 9

    def test_as_query(self):
        llm = LocalLinearMap(prototype=np.array([0.1, 0.2, 0.3]))
        query = llm.as_query()
        assert np.allclose(query.center, [0.1, 0.2])
        assert query.radius == pytest.approx(0.3)


class TestLocalModelParameters:
    def test_add_and_iterate(self):
        params = LocalModelParameters()
        params.add(LocalLinearMap(prototype=np.array([0.0, 0.1])))
        params.add(LocalLinearMap(prototype=np.array([1.0, 0.1])))
        assert len(params) == 2
        assert params.prototype_count == 2
        assert params.prototype_matrix().shape == (2, 2)

    def test_add_rejects_dimension_mismatch(self):
        params = LocalModelParameters()
        params.add(LocalLinearMap(prototype=np.array([0.0, 0.1])))
        with pytest.raises(DimensionalityMismatchError):
            params.add(LocalLinearMap(prototype=np.array([0.0, 0.0, 0.1])))

    def test_snapshot(self):
        params = LocalModelParameters()
        params.add(LocalLinearMap(prototype=np.array([0.0, 0.1]), mean_output=1.0))
        snapshot = params.snapshot()
        assert len(snapshot) == 1
        assert snapshot[0]["mean_output"] == 1.0

    def test_empty_matrix(self):
        assert LocalModelParameters().prototype_matrix().size == 0

    def test_dense_store_write_through(self):
        # SGD shifts a prototype in place; the shared dense matrix must see
        # the update without any re-stacking.
        params = LocalModelParameters()
        llm = LocalLinearMap(prototype=np.array([0.0, 0.0, 0.1]))
        params.add(llm)
        llm.shift_prototype(np.array([0.5, -0.5, 0.0]))
        assert np.allclose(params.prototype_view()[0], [0.5, -0.5, 0.1])
        assert np.allclose(params.prototype_matrix()[0], [0.5, -0.5, 0.1])

    def test_capacity_doubling_preserves_write_through(self):
        params = LocalModelParameters()
        maps = [
            LocalLinearMap(prototype=np.array([float(i), 0.0, 0.1]))
            for i in range(20)  # forces several capacity doublings
        ]
        for llm in maps:
            params.add(llm)
        maps[0].shift_prototype(np.array([0.25, 0.0, 0.0]))
        maps[-1].shift_prototype(np.array([-0.25, 0.0, 0.0]))
        view = params.prototype_view()
        assert view.shape == (20, 3)
        assert view[0, 0] == pytest.approx(0.25)
        assert view[-1, 0] == pytest.approx(19.0 - 0.25)

    def test_prototype_view_is_read_only(self):
        params = LocalModelParameters()
        params.add(LocalLinearMap(prototype=np.array([0.0, 0.1])))
        view = params.prototype_view()
        with pytest.raises(ValueError):
            view[0, 0] = 1.0

    def test_prototype_matrix_is_an_independent_copy(self):
        params = LocalModelParameters()
        llm = LocalLinearMap(prototype=np.array([0.0, 0.1]))
        params.add(llm)
        matrix = params.prototype_matrix()
        llm.shift_prototype(np.array([1.0, 0.0]))
        assert matrix[0, 0] == pytest.approx(0.0)

    def test_maps_view_is_cached_until_growth(self):
        params = LocalModelParameters()
        params.add(LocalLinearMap(prototype=np.array([0.0, 0.1])))
        first = params.maps_view
        assert params.maps_view is first
        params.add(LocalLinearMap(prototype=np.array([1.0, 0.1])))
        second = params.maps_view
        assert second is not first
        assert len(second) == 2

    def test_construction_from_existing_maps(self):
        maps = [
            LocalLinearMap(prototype=np.array([0.0, 0.1])),
            LocalLinearMap(prototype=np.array([1.0, 0.2])),
        ]
        params = LocalModelParameters(maps=maps)
        assert params.prototype_matrix().shape == (2, 2)
        maps[0].shift_prototype(np.array([0.5, 0.0]))
        assert params.prototype_view()[0, 0] == pytest.approx(0.5)


class TestRegressionPlanePredictShapes:
    """The return type of RegressionPlane.predict follows the input rank."""

    def _plane(self) -> RegressionPlane:
        return RegressionPlane(
            intercept=1.0,
            slope=np.array([2.0, -1.0]),
            prototype_center=np.array([0.5, 0.5]),
            prototype_radius=0.1,
        )

    def test_single_point_returns_python_float(self):
        # Scalar probes (e.g. the value-prediction metrics) rely on a plain
        # float coming back for 1-D input.
        value = self._plane().predict(np.array([1.0, 1.0]))
        assert isinstance(value, float)
        assert value == pytest.approx(2.0)

    def test_point_batch_returns_vector(self):
        # The subspace evaluators assign the result into a masked slice of a
        # prediction vector and rely on an (n,)-shaped array for 2-D input.
        points = np.array([[1.0, 1.0], [0.0, 0.0], [0.5, 0.5]])
        values = self._plane().predict(points)
        assert isinstance(values, np.ndarray)
        assert values.shape == (3,)
        out = np.empty(3)
        mask = np.array([True, False, True])
        out[mask] = self._plane().predict(points[mask])
        assert out[0] == pytest.approx(2.0)
