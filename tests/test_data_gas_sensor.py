"""Tests for the R1 surrogate (gas-sensor-like) dataset generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ols import OLSRegressor
from repro.data.gas_sensor import generate_gas_sensor_dataset, sensor_response
from repro.exceptions import ConfigurationError
from repro.metrics.regression import fvu


class TestSensorResponse:
    def test_is_deterministic(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(50, 6))
        assert np.allclose(sensor_response(points), sensor_response(points))

    def test_handles_single_feature(self):
        values = sensor_response(np.array([[0.5]]))
        assert values.shape == (1,)

    def test_is_nonlinear_in_inputs(self):
        # Doubling the input does not double the response.
        base = sensor_response(np.full((1, 6), 0.2))[0]
        doubled = sensor_response(np.full((1, 6), 0.4))[0]
        assert doubled != pytest.approx(2 * base, rel=0.05)


class TestGenerateGasSensorDataset:
    def test_shape_and_scaling(self):
        dataset = generate_gas_sensor_dataset(1_000, dimension=6, seed=0)
        assert dataset.size == 1_000
        assert dataset.dimension == 6
        assert dataset.inputs.min() >= 0.0 and dataset.inputs.max() <= 1.0
        assert dataset.outputs.min() >= 0.0 and dataset.outputs.max() <= 1.0

    def test_noise_vector_fraction_adds_rows(self):
        dataset = generate_gas_sensor_dataset(
            1_000, dimension=4, noise_vector_fraction=0.2, seed=0
        )
        assert dataset.size == 1_200

    def test_seed_reproducibility(self):
        first = generate_gas_sensor_dataset(500, dimension=3, seed=7)
        second = generate_gas_sensor_dataset(500, dimension=3, seed=7)
        assert np.allclose(first.inputs, second.inputs)
        assert np.allclose(first.outputs, second.outputs)

    def test_different_seeds_differ(self):
        first = generate_gas_sensor_dataset(500, dimension=3, seed=1)
        second = generate_gas_sensor_dataset(500, dimension=3, seed=2)
        assert not np.allclose(first.inputs, second.inputs)

    def test_global_linear_fit_leaves_substantial_unexplained_variance(self):
        # The property the paper relies on: a single linear model over the
        # whole dataset is a poor description of the data function.
        dataset = generate_gas_sensor_dataset(5_000, dimension=2, seed=3)
        model = OLSRegressor().fit(dataset.inputs, dataset.outputs)
        global_fvu = fvu(dataset.outputs, model.predict(dataset.inputs))
        assert global_fvu > 0.3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size": 0},
            {"size": 10, "dimension": 0},
            {"size": 10, "noise_std": -0.1},
            {"size": 10, "noise_vector_fraction": 1.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        size = kwargs.pop("size")
        with pytest.raises(ConfigurationError):
            generate_gas_sensor_dataset(size, **kwargs)
