"""Tests for the growing quantizer and the SGD update rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.avq import FixedKQuantizer, GrowingQuantizer
from repro.core.prototypes import LocalLinearMap
from repro.core.sgd import apply_winner_update
from repro.exceptions import ConfigurationError, DimensionalityMismatchError


class TestGrowingQuantizer:
    def test_first_query_becomes_prototype(self):
        quantizer = GrowingQuantizer(vigilance=0.5)
        index, grew, distance = quantizer.observe(np.array([0.1, 0.2, 0.1]), answer=0.7)
        assert index == 0 and grew
        assert np.isinf(distance)
        assert quantizer.prototype_count == 1
        assert quantizer.maps[0].mean_output == pytest.approx(0.7)

    def test_nearby_query_routes_to_winner(self):
        quantizer = GrowingQuantizer(vigilance=0.5)
        quantizer.observe(np.array([0.0, 0.0, 0.1]))
        index, grew, distance = quantizer.observe(np.array([0.1, 0.0, 0.1]))
        assert index == 0 and not grew
        assert distance == pytest.approx(0.1)
        assert quantizer.prototype_count == 1

    def test_distant_query_grows_new_prototype(self):
        quantizer = GrowingQuantizer(vigilance=0.2)
        quantizer.observe(np.array([0.0, 0.0, 0.1]))
        index, grew, _ = quantizer.observe(np.array([1.0, 1.0, 0.1]))
        assert grew and index == 1
        assert quantizer.prototype_count == 2
        assert quantizer.growth_events == 2

    def test_vigilance_controls_prototype_count(self):
        rng = np.random.default_rng(0)
        queries = np.column_stack(
            [rng.uniform(0, 1, size=(300, 2)), np.full(300, 0.1)]
        )
        coarse = GrowingQuantizer(vigilance=0.8)
        fine = GrowingQuantizer(vigilance=0.1)
        for row in queries:
            coarse.observe(row)
            fine.observe(row)
        assert fine.prototype_count > coarse.prototype_count

    def test_find_winner_is_closest(self):
        quantizer = GrowingQuantizer(vigilance=0.1)
        quantizer.observe(np.array([0.0, 0.0, 0.1]))
        quantizer.observe(np.array([1.0, 1.0, 0.1]))
        winner, distance = quantizer.find_winner(np.array([0.9, 0.9, 0.1]))
        assert winner == 1
        assert distance == pytest.approx(np.sqrt(2 * 0.01))

    def test_find_winner_without_prototypes(self):
        with pytest.raises(ConfigurationError):
            GrowingQuantizer(vigilance=0.5).find_winner(np.array([0.0, 0.1]))

    def test_dimension_mismatch(self):
        quantizer = GrowingQuantizer(vigilance=0.5)
        quantizer.observe(np.array([0.0, 0.0, 0.1]))
        with pytest.raises(DimensionalityMismatchError):
            quantizer.find_winner(np.array([0.0, 0.1]))

    def test_quantization_error_decreases_with_more_prototypes(self):
        rng = np.random.default_rng(1)
        queries = np.column_stack(
            [rng.uniform(0, 1, size=(500, 2)), np.full(500, 0.1)]
        )
        coarse = GrowingQuantizer(vigilance=1.0)
        fine = GrowingQuantizer(vigilance=0.15)
        for row in queries:
            coarse.observe(row)
            fine.observe(row)
        assert fine.quantization_error(queries) < coarse.quantization_error(queries)

    def test_assignments_within_range(self):
        quantizer = GrowingQuantizer(vigilance=0.3)
        rng = np.random.default_rng(2)
        queries = np.column_stack(
            [rng.uniform(0, 1, size=(100, 2)), np.full(100, 0.1)]
        )
        for row in queries:
            quantizer.observe(row)
        assignments = quantizer.assignments(queries)
        assert assignments.min() >= 0
        assert assignments.max() < quantizer.prototype_count

    def test_rejects_non_positive_vigilance(self):
        with pytest.raises(ConfigurationError):
            GrowingQuantizer(vigilance=0.0)


class TestFixedKQuantizer:
    def test_seeds_first_k_queries(self):
        quantizer = FixedKQuantizer(k=3)
        for value in (0.0, 0.5, 1.0, 0.75):
            quantizer.observe(np.array([value, 0.1]))
        assert quantizer.prototype_count == 3

    def test_never_grows_beyond_k(self):
        quantizer = FixedKQuantizer(k=2)
        rng = np.random.default_rng(0)
        for _ in range(100):
            quantizer.observe(np.append(rng.uniform(0, 1, 2), 0.1))
        assert quantizer.prototype_count == 2

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            FixedKQuantizer(k=0)

    def test_find_winner_requires_prototypes(self):
        with pytest.raises(ConfigurationError):
            FixedKQuantizer(k=2).find_winner(np.array([0.0, 0.1]))


class TestWinnerUpdate:
    def test_prototype_moves_towards_query(self):
        llm = LocalLinearMap(prototype=np.array([0.0, 0.0, 0.1]))
        apply_winner_update(llm, np.array([1.0, 0.0, 0.1]), answer=0.5, learning_rate=0.5)
        assert np.allclose(llm.prototype, [0.5, 0.0, 0.1])

    def test_learning_rate_one_moves_prototype_onto_query(self):
        llm = LocalLinearMap(prototype=np.array([0.2, 0.2, 0.1]))
        apply_winner_update(llm, np.array([0.6, 0.4, 0.2]), answer=1.0, learning_rate=1.0)
        assert np.allclose(llm.prototype, [0.6, 0.4, 0.2])

    def test_intercept_moves_towards_answer(self):
        llm = LocalLinearMap(prototype=np.array([0.0, 0.0, 0.1]), mean_output=0.0)
        update = apply_winner_update(
            llm, np.array([0.0, 0.0, 0.1]), answer=1.0, learning_rate=0.5
        )
        assert llm.mean_output == pytest.approx(0.5)
        assert update.prediction_error == pytest.approx(1.0)

    def test_zero_error_leaves_coefficients_unchanged(self):
        llm = LocalLinearMap(
            prototype=np.array([0.0, 0.0, 0.1]), mean_output=2.0, slope=np.zeros(3)
        )
        update = apply_winner_update(
            llm, np.array([0.0, 0.0, 0.1]), answer=2.0, learning_rate=0.5
        )
        assert update.prediction_error == pytest.approx(0.0)
        assert llm.mean_output == pytest.approx(2.0)
        assert np.allclose(llm.slope, 0.0)

    def test_update_counts_increment(self):
        llm = LocalLinearMap(prototype=np.array([0.0, 0.0, 0.1]))
        for _ in range(3):
            apply_winner_update(llm, np.array([0.1, 0.0, 0.1]), 0.2, 0.1)
        assert llm.updates == 3

    def test_repeated_updates_converge_to_local_mean(self):
        llm = LocalLinearMap(prototype=np.array([0.5, 0.5, 0.1]), mean_output=0.0)
        # Feeding the same (query at the prototype, answer) pair with the
        # hyperbolic schedule computes a running average, converging to 0.8.
        for step in range(200):
            apply_winner_update(
                llm,
                np.array([0.5, 0.5, 0.1]),
                answer=0.8,
                learning_rate=1.0 / (step + 1.0),
            )
        assert llm.mean_output == pytest.approx(0.8, abs=1e-6)

    def test_slope_learns_linear_relationship(self):
        rng = np.random.default_rng(0)
        llm = LocalLinearMap(prototype=np.array([0.5, 0.1]), mean_output=0.0)
        # y = 2 * (x - 0.5) + 1 around the prototype; the slope should head
        # towards 2 and the intercept towards 1.
        for step in range(4_000):
            x = 0.5 + rng.uniform(-0.2, 0.2)
            query = np.array([x, 0.1])
            answer = 2.0 * (x - 0.5) + 1.0
            # Freeze the prototype by re-centering it so only coefficients learn.
            llm._prototype[:] = [0.5, 0.1]  # noqa: SLF001 - test-only access
            apply_winner_update(llm, query, answer, learning_rate=1.0 / (step + 1.0))
        assert llm.mean_output == pytest.approx(1.0, abs=0.05)
        assert llm.center_slope[0] == pytest.approx(2.0, abs=0.3)

    def test_second_moment_tracks_difference_norm(self):
        llm = LocalLinearMap(prototype=np.array([0.0, 0.0, 0.1]))
        apply_winner_update(llm, np.array([0.1, 0.0, 0.1]), 0.0, 1.0)
        assert llm.difference_second_moment == pytest.approx(0.01)

    @pytest.mark.parametrize("rate", [0.0, -0.5, 1.5])
    def test_rejects_bad_learning_rate(self, rate):
        llm = LocalLinearMap(prototype=np.array([0.0, 0.1]))
        with pytest.raises(ConfigurationError):
            apply_winner_update(llm, np.array([0.0, 0.1]), 0.0, rate)
