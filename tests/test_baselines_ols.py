"""Tests for the OLS (REG) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ols import OLSRegressor, fit_reg_over_subspace
from repro.exceptions import (
    DimensionalityMismatchError,
    EmptySubspaceError,
    NotFittedError,
)


class TestFitting:
    def test_recovers_exact_linear_relationship(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(200, 3))
        u = 0.5 - 2.0 * x[:, 0] + 1.5 * x[:, 1] + 0.25 * x[:, 2]
        model = OLSRegressor().fit(x, u)
        assert model.intercept == pytest.approx(0.5, abs=1e-9)
        assert np.allclose(model.slope, [-2.0, 1.5, 0.25], atol=1e-9)

    def test_noisy_fit_close_to_truth(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(5_000, 2))
        u = 1.0 + 2.0 * x[:, 0] - 3.0 * x[:, 1] + rng.normal(0, 0.1, 5_000)
        model = OLSRegressor().fit(x, u)
        assert model.intercept == pytest.approx(1.0, abs=0.02)
        assert np.allclose(model.slope, [2.0, -3.0], atol=0.02)

    def test_single_row_fit_does_not_fail(self):
        model = OLSRegressor().fit(np.array([[1.0, 2.0]]), np.array([3.0]))
        assert model.predict(np.array([[1.0, 2.0]]))[0] == pytest.approx(3.0)

    def test_collinear_columns_handled(self):
        x = np.column_stack([np.arange(10.0), 2 * np.arange(10.0)])
        u = np.arange(10.0)
        model = OLSRegressor().fit(x, u)
        assert np.allclose(model.predict(x), u, atol=1e-8)

    def test_rejects_empty_input(self):
        with pytest.raises(EmptySubspaceError):
            OLSRegressor().fit(np.empty((0, 2)), np.empty(0))

    def test_rejects_mismatched_rows(self):
        with pytest.raises(DimensionalityMismatchError):
            OLSRegressor().fit(np.ones((5, 2)), np.ones(4))


class TestAccessorsAndPrediction:
    def test_requires_fit(self):
        model = OLSRegressor()
        with pytest.raises(NotFittedError):
            _ = model.coefficients
        with pytest.raises(NotFittedError):
            model.predict(np.ones((1, 2)))

    def test_coefficients_layout(self):
        x = np.array([[0.0], [1.0]])
        model = OLSRegressor().fit(x, np.array([1.0, 3.0]))
        assert np.allclose(model.coefficients, [1.0, 2.0])
        assert model.dimension == 1
        assert model.training_rows == 2

    def test_predict_dimension_mismatch(self):
        model = OLSRegressor().fit(np.ones((5, 2)), np.ones(5))
        with pytest.raises(DimensionalityMismatchError):
            model.predict(np.ones((3, 3)))

    def test_residuals_sum_to_zero_with_intercept(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(300, 2))
        u = 1.0 + x[:, 0] + rng.normal(0, 0.5, 300)
        model = OLSRegressor().fit(x, u)
        assert abs(model.residuals(x, u).sum()) < 1e-8


class TestDiagnostics:
    def test_r_squared_perfect_fit(self):
        x = np.arange(10.0).reshape(-1, 1)
        u = 3.0 * x.ravel() + 1.0
        model = OLSRegressor().fit(x, u)
        assert model.r_squared(x, u) == pytest.approx(1.0)

    def test_r_squared_no_relationship_near_zero(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2_000, 1))
        u = rng.normal(size=2_000)
        model = OLSRegressor().fit(x, u)
        assert abs(model.r_squared(x, u)) < 0.05

    def test_r_squared_constant_outputs(self):
        x = np.arange(5.0).reshape(-1, 1)
        u = np.full(5, 2.0)
        model = OLSRegressor().fit(x, u)
        assert model.r_squared(x, u) == pytest.approx(1.0)

    def test_ssr_non_negative(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(100, 2))
        u = rng.normal(size=100)
        model = OLSRegressor().fit(x, u)
        assert model.sum_of_squared_residuals(x, u) >= 0.0

    def test_standard_errors_shrink_with_more_data(self):
        rng = np.random.default_rng(5)

        def errors(n: int) -> np.ndarray:
            x = rng.uniform(-1, 1, size=(n, 1))
            u = 2.0 * x.ravel() + rng.normal(0, 0.3, n)
            model = OLSRegressor().fit(x, u)
            return model.coefficient_standard_errors(x, u)

        small = errors(50)
        large = errors(5_000)
        assert np.all(large < small)


class TestConvenienceWrapper:
    def test_fit_reg_over_subspace(self):
        x = np.arange(20.0).reshape(-1, 1)
        u = 5.0 - 0.5 * x.ravel()
        intercept, slope = fit_reg_over_subspace(x, u)
        assert intercept == pytest.approx(5.0)
        assert slope[0] == pytest.approx(-0.5)
