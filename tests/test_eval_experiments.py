"""Smoke tests for the experiment harness (small-scale runs).

These tests run each figure's experiment at a deliberately tiny scale to
verify the plumbing — dataset construction, training, evaluation, result
structure — and the qualitative relationships the paper reports where they
are cheap enough to check.  The benchmarks run the full-size versions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import (
    build_context,
    default_radius_distribution,
    run_convergence_experiment,
    run_local_approximation_example,
    run_prototype_example,
    run_q1_accuracy_vs_coefficient,
    run_scalability_experiment,
)
from repro.exceptions import ConfigurationError


class TestBuildContext:
    def test_context_structure(self):
        context = build_context(
            "R1", dimension=2, dataset_size=2_000, training_queries=150, testing_queries=50, seed=1
        )
        assert context.dataset.size == 2_000
        assert context.dimension == 2
        assert len(context.training) + len(context.testing) <= 200
        assert len(context.training) > len(context.testing)

    def test_r2_context_is_normalized(self):
        context = build_context(
            "R2", dimension=2, dataset_size=1_000, training_queries=100, testing_queries=30, seed=1
        )
        assert context.dataset.inputs.min() >= 0.0
        assert context.dataset.inputs.max() <= 1.0

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            build_context("R3")

    def test_train_model_returns_report(self):
        context = build_context(
            "R1", dimension=2, dataset_size=2_000, training_queries=150, testing_queries=50, seed=1
        )
        model, report = context.train_model(coefficient=0.2)
        assert model.prototype_count == report.prototype_count
        assert report.pairs_processed > 0

    def test_default_radius_grows_with_dimension(self):
        assert (
            default_radius_distribution(5).mean > default_radius_distribution(2).mean
        )


class TestPrototypeExample:
    def test_coarse_quantization_gives_few_prototypes(self):
        result = run_prototype_example(query_count=300, coefficient=0.9, seed=1)
        assert 1 <= result["prototype_count"] <= 15
        assert len(result["prototype_centers"]) == result["prototype_count"]

    def test_finer_quantization_gives_more_prototypes(self):
        coarse = run_prototype_example(query_count=300, coefficient=0.9, seed=1)
        fine = run_prototype_example(query_count=300, coefficient=0.3, seed=1)
        assert fine["prototype_count"] > coarse["prototype_count"]


class TestLocalApproximationExample:
    def test_llm_beats_single_global_line(self):
        result = run_local_approximation_example(
            dataset_size=1_500, training_queries=500, seed=2
        )
        assert result["llm_fvu"] < result["reg_fvu"]
        assert result["plr_fvu"] <= result["reg_fvu"]
        assert result["prototype_count"] >= 3


class TestConvergenceExperiment:
    def test_criterion_trajectory_shrinks(self):
        result = run_convergence_experiment(
            "R1",
            dimensions=(2,),
            dataset_size=2_000,
            training_queries=400,
            coefficient=0.1,
            gamma=0.01,
            seed=1,
        )
        trajectory = np.array(result["by_dimension"][2]["criterion_trajectory"])
        assert trajectory.size > 10
        # The criterion at the end is far below its early values.
        assert trajectory[-1] < trajectory[:10].max()


class TestAccuracyExperiment:
    def test_rmse_increases_with_coarser_quantization(self):
        result = run_q1_accuracy_vs_coefficient(
            "R1",
            dimensions=(2,),
            coefficients=(0.05, 0.5),
            dataset_size=3_000,
            training_queries=400,
            testing_queries=80,
            seed=1,
        )
        rmse_fine, rmse_coarse = result["rmse"]["d=2"]
        assert rmse_fine < rmse_coarse
        prototypes_fine, prototypes_coarse = result["prototypes"]["d=2"]
        assert prototypes_fine > prototypes_coarse


class TestScalabilityExperiment:
    def test_llm_latency_flat_and_small(self):
        result = run_scalability_experiment(
            dataset_sizes=(2_000, 8_000),
            dimension=2,
            training_queries=150,
            measured_queries=10,
            seed=1,
        )
        llm = result["q1_latency_ms"]["llm"]
        exact = result["q1_latency_ms"]["exact_reg"]
        # LLM latency does not grow with the dataset by more than noise,
        # while being much smaller than exact execution on the larger set.
        assert llm[1] < exact[1]
        assert len(result["q2_latency_ms"]["plr"]) == 2
