"""Tests for table schemas and the metadata catalog."""

from __future__ import annotations

import sqlite3

import pytest

from repro.dbms.catalog import Catalog
from repro.dbms.schema import ColumnSpec, TableSchema, schema_for_dataset
from repro.exceptions import CatalogError, StorageError


class TestColumnSpec:
    def test_valid_column(self):
        column = ColumnSpec("x1")
        assert column.affinity == "REAL"
        assert "x1 REAL NOT NULL" == column.ddl

    def test_affinity_normalised_to_upper(self):
        assert ColumnSpec("u", affinity="real").affinity == "REAL"

    @pytest.mark.parametrize("name", ["1x", "drop table", "x-y", "", "x;--"])
    def test_rejects_invalid_identifiers(self, name):
        with pytest.raises(StorageError):
            ColumnSpec(name)

    def test_rejects_unknown_affinity(self):
        with pytest.raises(StorageError):
            ColumnSpec("x1", affinity="BLOB")


class TestTableSchema:
    def test_schema_for_dataset_layout(self):
        schema = schema_for_dataset("sensors", 3)
        assert schema.dimension == 3
        assert schema.column_names == ["x1", "x2", "x3", "u"]

    def test_create_table_sql_contains_all_columns(self):
        schema = schema_for_dataset("sensors", 2)
        ddl = schema.create_table_sql()
        for column in ("x1", "x2", "u"):
            assert column in ddl
        assert ddl.startswith("CREATE TABLE IF NOT EXISTS sensors")

    def test_insert_sql_has_matching_placeholders(self):
        schema = schema_for_dataset("t", 4)
        sql = schema.insert_sql()
        assert sql.count("?") == 5

    def test_statements_are_valid_sqlite(self):
        schema = schema_for_dataset("demo", 2)
        connection = sqlite3.connect(":memory:")
        connection.execute(schema.create_table_sql())
        connection.execute(schema.insert_sql(), (0.1, 0.2, 0.3))
        rows = connection.execute(schema.select_all_sql()).fetchall()
        assert rows == [(0.1, 0.2, 0.3)]

    def test_rejects_invalid_table_name(self):
        with pytest.raises(StorageError):
            schema_for_dataset("bad name", 2)

    def test_rejects_zero_dimension(self):
        with pytest.raises(StorageError):
            schema_for_dataset("t", 0)

    def test_rejects_duplicate_columns(self):
        with pytest.raises(StorageError):
            TableSchema(
                table_name="t",
                input_columns=(ColumnSpec("u"),),
            )


class TestCatalog:
    @pytest.fixture()
    def catalog(self) -> Catalog:
        return Catalog(sqlite3.connect(":memory:"))

    def test_register_and_get(self, catalog):
        info = catalog.register("sensors", dimension=3, row_count=100, metadata={"a": 1})
        assert info.table_name == "sensors"
        fetched = catalog.get("sensors")
        assert fetched.dimension == 3
        assert fetched.row_count == 100
        assert fetched.metadata == {"a": 1}

    def test_register_duplicate_fails(self, catalog):
        catalog.register("sensors", 2, 10)
        with pytest.raises(CatalogError):
            catalog.register("sensors", 2, 10)

    def test_get_unknown_fails(self, catalog):
        with pytest.raises(CatalogError):
            catalog.get("missing")

    def test_exists(self, catalog):
        assert not catalog.exists("sensors")
        catalog.register("sensors", 2, 10)
        assert catalog.exists("sensors")

    def test_update_row_count(self, catalog):
        catalog.register("sensors", 2, 10)
        catalog.update_row_count("sensors", 25)
        assert catalog.get("sensors").row_count == 25

    def test_update_row_count_unknown_fails(self, catalog):
        with pytest.raises(CatalogError):
            catalog.update_row_count("missing", 5)

    def test_unregister(self, catalog):
        catalog.register("sensors", 2, 10)
        catalog.unregister("sensors")
        assert not catalog.exists("sensors")

    def test_unregister_unknown_fails(self, catalog):
        with pytest.raises(CatalogError):
            catalog.unregister("missing")

    def test_list_tables_sorted(self, catalog):
        catalog.register("zeta", 2, 1)
        catalog.register("alpha", 2, 1)
        names = [info.table_name for info in catalog.list_tables()]
        assert names == ["alpha", "zeta"]

    def test_schema_reconstruction(self, catalog):
        catalog.register("sensors", 4, 10)
        schema = catalog.get("sensors").schema
        assert schema.column_names == ["x1", "x2", "x3", "x4", "u"]
