"""Tests for the MARS-style piecewise linear regression (PLR) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.plr import BasisFunction, MARSRegressor, fit_plr_over_subspace
from repro.exceptions import (
    ConfigurationError,
    DimensionalityMismatchError,
    EmptySubspaceError,
    NotFittedError,
)


class TestBasisFunction:
    def test_right_hinge(self):
        hinge = BasisFunction(variable=0, knot=0.5, sign=+1)
        values = hinge.evaluate(np.array([[0.2], [0.5], [0.9]]))
        assert np.allclose(values, [0.0, 0.0, 0.4])

    def test_left_hinge(self):
        hinge = BasisFunction(variable=0, knot=0.5, sign=-1)
        values = hinge.evaluate(np.array([[0.2], [0.5], [0.9]]))
        assert np.allclose(values, [0.3, 0.0, 0.0])

    def test_describe(self):
        assert "x1" in BasisFunction(0, 0.25, +1).describe()
        assert "0.25" in BasisFunction(0, 0.25, -1).describe()

    def test_rejects_bad_sign(self):
        with pytest.raises(ConfigurationError):
            BasisFunction(variable=0, knot=0.5, sign=0)

    def test_rejects_negative_variable(self):
        with pytest.raises(ConfigurationError):
            BasisFunction(variable=-1, knot=0.5, sign=1)


class TestMARSFitting:
    def test_fits_piecewise_linear_function_exactly(self):
        # u = |x - 0.5| is exactly representable with two hinges at 0.5.
        x = np.linspace(0, 1, 200).reshape(-1, 1)
        u = np.abs(x.ravel() - 0.5)
        model = MARSRegressor(max_basis_functions=6).fit(x, u)
        assert model.r_squared(x, u) > 0.999

    def test_outperforms_single_line_on_nonlinear_data(self):
        from repro.baselines.ols import OLSRegressor

        x = np.linspace(0, 1, 400).reshape(-1, 1)
        u = np.sin(2 * np.pi * x.ravel())
        plr = MARSRegressor(max_basis_functions=10).fit(x, u)
        ols = OLSRegressor().fit(x, u)
        assert plr.r_squared(x, u) > ols.r_squared(x, u) + 0.3

    def test_linear_data_needs_no_knots_after_pruning(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        u = 2.0 * x.ravel() + 1.0
        model = MARSRegressor(max_basis_functions=10).fit(x, u)
        # The GCV pruning should keep the model compact on linear data while
        # preserving essentially perfect fit.
        assert model.r_squared(x, u) > 0.999
        assert model.knot_count <= 2

    def test_multivariate_additive_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(800, 2))
        u = np.abs(x[:, 0] - 0.3) + 2.0 * np.maximum(x[:, 1] - 0.6, 0.0)
        model = MARSRegressor(max_basis_functions=12).fit(x, u)
        assert model.r_squared(x, u) > 0.97

    def test_respects_max_basis_functions(self):
        x = np.linspace(0, 1, 300).reshape(-1, 1)
        u = np.sin(6 * np.pi * x.ravel())
        model = MARSRegressor(max_basis_functions=4).fit(x, u)
        assert model.knot_count <= 4

    def test_handful_of_rows(self):
        x = np.array([[0.0], [0.5], [1.0]])
        u = np.array([0.0, 1.0, 0.0])
        model = MARSRegressor(max_basis_functions=4).fit(x, u)
        assert np.all(np.isfinite(model.predict(x)))

    def test_rejects_empty(self):
        with pytest.raises(EmptySubspaceError):
            MARSRegressor().fit(np.empty((0, 1)), np.empty(0))

    def test_rejects_mismatched_rows(self):
        with pytest.raises(DimensionalityMismatchError):
            MARSRegressor().fit(np.ones((4, 1)), np.ones(3))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_basis_functions": 0},
            {"gcv_penalty": -1.0},
            {"max_candidate_knots": 0},
            {"min_improvement": -0.1},
        ],
    )
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ConfigurationError):
            MARSRegressor(**kwargs)


class TestMARSPrediction:
    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            MARSRegressor().predict(np.ones((1, 1)))

    def test_predict_dimension_mismatch(self):
        model = MARSRegressor(max_basis_functions=2).fit(np.ones((10, 2)), np.ones(10))
        with pytest.raises(DimensionalityMismatchError):
            model.predict(np.ones((2, 3)))

    def test_coefficients_align_with_basis(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        u = np.abs(x.ravel() - 0.5)
        model = MARSRegressor(max_basis_functions=4).fit(x, u)
        assert model.coefficients.shape[0] == 1 + model.knot_count


class TestLinearSegments:
    def test_segments_cover_the_grid(self):
        x = np.linspace(0, 1, 300).reshape(-1, 1)
        u = np.abs(x.ravel() - 0.5)
        model = MARSRegressor(max_basis_functions=4).fit(x, u)
        segments = model.linear_segments_1d(np.linspace(0, 1, 50))
        assert segments[0][0] == pytest.approx(0.0)
        assert segments[-1][1] == pytest.approx(1.0)
        # Slopes on either side of 0.5 should have opposite signs.
        slopes = [segment[3] for segment in segments]
        assert min(slopes) < 0 < max(slopes)

    def test_segments_require_1d_model(self):
        model = MARSRegressor(max_basis_functions=2).fit(np.ones((10, 2)), np.ones(10))
        with pytest.raises(ConfigurationError):
            model.linear_segments_1d(np.linspace(0, 1, 10))


class TestConvenienceWrapper:
    def test_fit_plr_over_subspace(self):
        x = np.linspace(0, 1, 200).reshape(-1, 1)
        u = np.abs(x.ravel() - 0.25)
        model = fit_plr_over_subspace(x, u, max_basis_functions=6)
        assert isinstance(model, MARSRegressor)
        assert model.r_squared(x, u) > 0.99
