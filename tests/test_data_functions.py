"""Tests for the analytic data functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.functions import (
    PiecewiseNonLinear1D,
    ProductSaddle,
    Rosenbrock,
    SineRidge,
    get_data_function,
    list_data_functions,
)
from repro.exceptions import ConfigurationError, DimensionalityMismatchError


class TestRosenbrock:
    def test_global_minimum_is_zero_at_ones(self):
        for dimension in (2, 3, 5):
            function = Rosenbrock(dimension)
            assert function(np.ones(dimension)) == pytest.approx(0.0)

    def test_known_value_2d(self):
        function = Rosenbrock(2)
        # g(0, 0) = 100*(0 - 0)^2 + (1 - 0)^2 = 1
        assert function(np.array([0.0, 0.0])) == pytest.approx(1.0)

    def test_batch_matches_scalar_evaluation(self):
        function = Rosenbrock(3)
        rng = np.random.default_rng(0)
        points = rng.uniform(-2, 2, size=(20, 3))
        batch = function(points)
        individual = np.array([function(point) for point in points])
        assert np.allclose(batch, individual)

    def test_values_are_non_negative(self):
        function = Rosenbrock(4)
        rng = np.random.default_rng(1)
        points = rng.uniform(-10, 10, size=(100, 4))
        assert np.all(function(points) >= 0.0)

    def test_rejects_one_dimension(self):
        with pytest.raises(ConfigurationError):
            Rosenbrock(1)

    def test_rejects_wrong_input_dimension(self):
        function = Rosenbrock(2)
        with pytest.raises(DimensionalityMismatchError):
            function(np.ones(3))


class TestProductSaddle:
    def test_matches_example_two_formula(self):
        function = ProductSaddle(2)
        # u = x1 (x2 + 1)
        assert function(np.array([0.5, 1.0])) == pytest.approx(1.0)
        assert function(np.array([2.0, -1.0])) == pytest.approx(0.0)

    def test_is_nonlinear(self):
        function = ProductSaddle(2)
        a = function(np.array([1.0, 1.0]))
        b = function(np.array([2.0, 2.0]))
        assert b != pytest.approx(2 * a)

    def test_one_dimensional_variant(self):
        function = ProductSaddle(1)
        assert function(np.array([2.0])) == pytest.approx(6.0)


class TestSineRidge:
    def test_output_is_bounded(self):
        function = SineRidge(3)
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(200, 3))
        values = function(points)
        assert np.all(values <= 2.0) and np.all(values >= -1.0)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            SineRidge(2, frequency=0.0)

    def test_deterministic(self):
        function = SineRidge(2)
        point = np.array([0.3, 0.7])
        assert function(point) == pytest.approx(function(point))


class TestPiecewise1D:
    def test_dimension_is_one(self):
        assert PiecewiseNonLinear1D().dimension == 1

    def test_has_multiple_local_trends(self):
        # The derivative changes sign at least twice over [0, 1].
        function = PiecewiseNonLinear1D()
        grid = np.linspace(0.0, 1.0, 400).reshape(-1, 1)
        values = function(grid)
        signs = np.sign(np.diff(values))
        sign_changes = np.sum(np.abs(np.diff(signs)) > 0)
        assert sign_changes >= 2

    def test_domain_is_unit_interval(self):
        assert PiecewiseNonLinear1D().domain == (0.0, 1.0)


class TestRegistry:
    def test_lists_all_functions(self):
        names = list_data_functions()
        assert {"rosenbrock", "product_saddle", "sine_ridge", "piecewise_1d"} <= set(names)

    def test_get_by_name(self):
        function = get_data_function("rosenbrock", dimension=3)
        assert isinstance(function, Rosenbrock)
        assert function.dimension == 3

    def test_get_piecewise_ignores_dimension(self):
        function = get_data_function("piecewise_1d", dimension=5)
        assert function.dimension == 1

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_data_function("not_a_function")

    def test_sample_inputs_respect_domain(self):
        function = get_data_function("rosenbrock", dimension=2)
        samples = function.sample_inputs(100, np.random.default_rng(0))
        low, high = function.domain
        assert samples.min() >= low and samples.max() <= high
