"""Tests for the Lp geometry helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import DimensionalityMismatchError, InvalidQueryError
from repro.queries.geometry import (
    ball_volume,
    balls_overlap,
    lp_distance,
    lp_norm,
    overlap_degree,
    pairwise_lp_distance,
    points_within_ball,
)


class TestLpNorm:
    def test_euclidean(self):
        assert lp_norm(np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_manhattan(self):
        assert lp_norm(np.array([3.0, -4.0]), p=1) == pytest.approx(7.0)

    def test_chebyshev(self):
        assert lp_norm(np.array([3.0, -4.0]), p=np.inf) == pytest.approx(4.0)

    def test_zero_vector(self):
        assert lp_norm(np.zeros(5)) == 0.0

    def test_rejects_invalid_order(self):
        with pytest.raises(InvalidQueryError):
            lp_norm(np.array([1.0]), p=0.5)

    def test_rejects_matrix_input(self):
        with pytest.raises(InvalidQueryError):
            lp_norm(np.ones((2, 2)))


class TestLpDistance:
    def test_symmetry(self):
        a, b = np.array([0.0, 1.0]), np.array([2.0, 3.0])
        assert lp_distance(a, b) == pytest.approx(lp_distance(b, a))

    def test_identity(self):
        a = np.array([1.5, -2.0, 0.25])
        assert lp_distance(a, a) == 0.0

    def test_triangle_inequality(self):
        a, b, c = np.array([0.0, 0.0]), np.array([1.0, 1.0]), np.array([2.0, 0.0])
        assert lp_distance(a, c) <= lp_distance(a, b) + lp_distance(b, c) + 1e-12

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionalityMismatchError):
            lp_distance(np.array([1.0]), np.array([1.0, 2.0]))


class TestPairwiseDistance:
    def test_matches_scalar_distance(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [3.0, 4.0]])
        center = np.array([0.0, 0.0])
        distances = pairwise_lp_distance(points, center)
        expected = [lp_distance(row, center) for row in points]
        assert np.allclose(distances, expected)

    @pytest.mark.parametrize("p", [1.0, 2.0, 3.0, np.inf])
    def test_orders_agree_with_numpy(self, p):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(50, 4))
        center = rng.normal(size=4)
        distances = pairwise_lp_distance(points, center, p=p)
        expected = np.array(
            [np.linalg.norm(row - center, ord=p) for row in points]
        )
        assert np.allclose(distances, expected)

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionalityMismatchError):
            pairwise_lp_distance(np.ones((3, 2)), np.ones(3))


class TestPointsWithinBall:
    def test_selects_inclusive_boundary(self):
        points = np.array([[0.0], [1.0], [2.0]])
        mask = points_within_ball(points, np.array([0.0]), radius=1.0)
        assert mask.tolist() == [True, True, False]

    def test_negative_radius_rejected(self):
        with pytest.raises(InvalidQueryError):
            points_within_ball(np.ones((2, 1)), np.array([0.0]), radius=-0.1)

    def test_zero_radius_selects_exact_matches(self):
        points = np.array([[0.5, 0.5], [0.5, 0.6]])
        mask = points_within_ball(points, np.array([0.5, 0.5]), radius=0.0)
        assert mask.tolist() == [True, False]


class TestBallVolume:
    def test_known_values(self):
        assert ball_volume(1.0, 1) == pytest.approx(2.0)
        assert ball_volume(1.0, 2) == pytest.approx(math.pi)
        assert ball_volume(1.0, 3) == pytest.approx(4.0 / 3.0 * math.pi)

    def test_scaling_with_radius(self):
        assert ball_volume(2.0, 3) == pytest.approx(8.0 * ball_volume(1.0, 3))

    def test_rejects_negative_radius(self):
        with pytest.raises(InvalidQueryError):
            ball_volume(-1.0, 2)


class TestOverlapPredicate:
    def test_overlapping(self):
        assert balls_overlap(np.array([0.0, 0.0]), 1.0, np.array([1.5, 0.0]), 1.0)

    def test_just_touching_counts_as_overlap(self):
        assert balls_overlap(np.array([0.0]), 1.0, np.array([2.0]), 1.0)

    def test_disjoint(self):
        assert not balls_overlap(np.array([0.0]), 1.0, np.array([2.5]), 1.0)

    def test_negative_radius_rejected(self):
        with pytest.raises(InvalidQueryError):
            balls_overlap(np.array([0.0]), -1.0, np.array([1.0]), 1.0)


class TestOverlapDegree:
    def test_identical_queries_have_degree_one(self):
        center = np.array([0.3, 0.7])
        assert overlap_degree(center, 0.2, center, 0.2) == pytest.approx(1.0)

    def test_disjoint_queries_have_degree_zero(self):
        assert overlap_degree(np.array([0.0]), 0.1, np.array([5.0]), 0.1) == 0.0

    def test_just_touching_degree_zero(self):
        value = overlap_degree(np.array([0.0]), 1.0, np.array([2.0]), 1.0)
        assert value == pytest.approx(0.0)

    def test_degree_is_symmetric(self):
        a, b = np.array([0.1, 0.2]), np.array([0.3, 0.1])
        assert overlap_degree(a, 0.3, b, 0.2) == pytest.approx(
            overlap_degree(b, 0.2, a, 0.3)
        )

    def test_degree_in_unit_interval(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            a, b = rng.uniform(0, 1, 2), rng.uniform(0, 1, 2)
            ra, rb = rng.uniform(0.01, 0.5, 2)
            degree = overlap_degree(a, ra, b, rb)
            assert 0.0 <= degree <= 1.0

    def test_concentric_unequal_radii_below_one(self):
        # A small ball strictly inside a larger one: overlapping but not a
        # perfect match, so the degree must be strictly between 0 and 1.
        value = overlap_degree(np.array([0.5]), 0.1, np.array([0.5]), 0.4)
        assert 0.0 < value < 1.0

    def test_degenerate_point_queries(self):
        assert overlap_degree(np.array([1.0]), 0.0, np.array([1.0]), 0.0) == 1.0
        assert overlap_degree(np.array([1.0]), 0.0, np.array([2.0]), 0.0) == 0.0
