"""Tests for the model-backed batched serving layer (`repro.dbms.serving`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig, TrainingConfig
from repro.core.model import LLMModel
from repro.data.synthetic import SyntheticDataset
from repro.dbms.executor import ExactQueryEngine
from repro.dbms.serving import AnalyticsService, ServingStatistics, StatementResult
from repro.dbms.sharding import ShardedQueryEngine
from repro.dbms.sqlfront import AnalyticsSession, parse_statement
from repro.dbms.storage import SQLiteDataStore
from repro.exceptions import (
    ConfigurationError,
    EmptySubspaceError,
    SQLSyntaxError,
)
from repro.queries.query import Query
from repro.queries.stream import LabelledWorkload
from repro.queries.workload import (
    QueryWorkloadGenerator,
    RadiusDistribution,
    WorkloadSpec,
)

TABLE = "sensors"


def _dataset(size: int = 4_000, seed: int = 0) -> SyntheticDataset:
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(0, 1, size=(size, 2))
    outputs = 1.0 + inputs[:, 0] + 2.0 * inputs[:, 1]
    return SyntheticDataset(
        inputs=inputs, outputs=outputs, name=TABLE, domain=(0.0, 1.0)
    )


def _train_model(
    engine: ExactQueryEngine,
    *,
    center_high: float = 1.0,
    norm_order: float = 2.0,
    count: int = 300,
) -> LLMModel:
    spec = WorkloadSpec(
        dimension=2,
        center_low=0.0,
        center_high=center_high,
        radius=RadiusDistribution(mean=0.1, std=0.02),
        norm_order=norm_order,
    )
    queries = QueryWorkloadGenerator(spec, seed=1).generate(count)
    workload = LabelledWorkload.from_queries(queries, engine.mean_value)
    model = LLMModel(
        dimension=2,
        config=ModelConfig(quantization_coefficient=0.15, norm_order=norm_order),
        training=TrainingConfig(convergence_threshold=1e-4),
    )
    model.fit(workload)
    return model


@pytest.fixture(scope="module")
def engine() -> ExactQueryEngine:
    return ExactQueryEngine(_dataset())


@pytest.fixture(scope="module")
def half_model(engine) -> LLMModel:
    """A model trained only on the left part of the cube: coverage gaps."""
    return _train_model(engine, center_high=0.45)


@pytest.fixture(scope="module")
def full_model(engine) -> LLMModel:
    return _train_model(engine, center_high=1.0)


@pytest.fixture()
def service(engine, half_model) -> AnalyticsService:
    service = AnalyticsService()
    service.register_engine(TABLE, engine)
    service.register_model(TABLE, half_model)
    return service


def _mixed_statements(count: int = 60) -> list[str]:
    """Statements spanning the covered left region and the uncovered right."""
    rng = np.random.default_rng(7)
    statements = []
    for index in range(count):
        x = rng.uniform(0.1, 0.9)
        y = rng.uniform(0.1, 0.9)
        radius = rng.uniform(0.08, 0.15)
        kind = ("AVG(u)", "REGRESSION(u)", "COUNT(*)")[index % 3]
        statements.append(
            f"SELECT {kind} FROM {TABLE} WITHIN {radius!r} OF ({x!r}, {y!r})"
        )
    return statements


class TestServingStatistics:
    def test_record_batch_and_rates(self):
        stats = ServingStatistics()
        stats.record_batch(
            10, model_answered=7, exact_answered=1, fallbacks=2, empties=1, seconds=0.5
        )
        assert stats.statements_executed == 10
        assert stats.batches_executed == 1
        assert stats.fallback_rate == pytest.approx(0.2)
        assert stats.mean_seconds == pytest.approx(0.05)
        assert stats.min_seconds == pytest.approx(0.05)
        assert stats.max_seconds == pytest.approx(0.05)

    def test_zero_count_batch_ignored(self):
        stats = ServingStatistics()
        stats.record_batch(0, seconds=1.0)
        assert stats.statements_executed == 0
        assert stats.fallback_rate == 0.0
        assert stats.mean_seconds == 0.0
        assert stats.min_seconds == 0.0

    def test_merge_and_reset(self):
        first = ServingStatistics()
        first.record_batch(4, model_answered=4, seconds=0.4)
        second = ServingStatistics()
        second.record_batch(6, fallbacks=6, seconds=0.06)
        first.merge(second)
        assert first.statements_executed == 10
        assert first.fallback_count == 6
        assert first.min_seconds == pytest.approx(0.01)
        assert first.max_seconds == pytest.approx(0.1)
        first.reset()
        assert first.statements_executed == 0
        assert first.total_seconds == 0.0


class TestRegistry:
    def test_tables_and_lookup_errors(self, engine, half_model):
        service = AnalyticsService(engines={"a": engine}, models={"b": half_model})
        assert service.tables == ["a", "b"]
        with pytest.raises(SQLSyntaxError):
            service.engine_for("b")
        with pytest.raises(SQLSyntaxError):
            service.model_for("a")

    def test_invalid_route_rejected(self):
        with pytest.raises(ConfigurationError):
            AnalyticsService(route="bogus")

    def test_register_model_from_file(self, tmp_path, engine, half_model):
        from repro.core.persistence import save_model

        path = save_model(half_model, tmp_path / "model.json")
        service = AnalyticsService(engines={TABLE: engine})
        loaded = service.register_model_from_file(TABLE, path)
        query = Query(center=np.array([0.2, 0.3]), radius=0.1)
        assert loaded.predict_mean(query) == half_model.predict_mean(query)
        value = service.execute(
            f"SELECT AVG(u) FROM {TABLE} WITHIN 0.1 OF (0.2, 0.3)", mode="model"
        )
        assert value == half_model.predict_mean(query)

    def test_register_table_from_store(self, engine):
        dataset = _dataset(size=500, seed=3)
        with SQLiteDataStore() as store:
            store.load_dataset(dataset, "stored")
            service = AnalyticsService()
            built = service.register_table_from_store(store, "stored", table=TABLE)
            assert built.size == dataset.size
            count = service.execute(
                f"SELECT COUNT(*) FROM {TABLE} WITHIN 0.3 OF (0.5, 0.5)",
                mode="exact",
            )
        reference = ExactQueryEngine(dataset).cardinality(
            Query(center=np.array([0.5, 0.5]), radius=0.3)
        )
        assert count == reference


class TestNormResolution:
    def test_defaults_to_euclidean_without_model(self, engine):
        service = AnalyticsService(engines={TABLE: engine})
        assert service.resolve_norm_order(TABLE) == 2.0

    def test_model_pins_the_table_geometry(self, engine):
        model = _train_model(engine, norm_order=1.0, count=150)
        service = AnalyticsService(engines={TABLE: engine}, models={TABLE: model})
        assert service.resolve_norm_order(TABLE) == 1.0
        # The model-side answer must be computed under the model's L1
        # geometry, not a hard-coded Euclidean ball.
        statement = parse_statement(
            f"SELECT AVG(u) FROM {TABLE} WITHIN 0.1 OF (0.4, 0.4)"
        )
        value = service.execute(statement, mode="model")
        l1_query = Query(center=np.array([0.4, 0.4]), radius=0.1, norm_order=1.0)
        assert value == pytest.approx(model.predict_mean(l1_query), abs=1e-12)

    def test_explicit_norm_clause_wins(self, engine, half_model):
        service = AnalyticsService(engines={TABLE: engine}, models={TABLE: half_model})
        statement = parse_statement(
            f"SELECT COUNT(*) FROM {TABLE} WITHIN 0.1 OF (0.5, 0.5) NORM INF"
        )
        count = service.execute(statement, mode="exact")
        chebyshev = Query(
            center=np.array([0.5, 0.5]), radius=0.1, norm_order=float("inf")
        )
        assert count == engine.cardinality(chebyshev)
        assert count > engine.cardinality(chebyshev.with_norm_order(2.0))


class TestExactMode:
    def test_script_matches_per_query_engine(self, service, engine, half_model):
        statements = _mixed_statements(30)
        results = service.execute_script(statements, mode="exact")
        assert all(result.source == "exact" for result in results)
        order = half_model.config.norm_order
        for result in results:
            query = result.statement.to_query(order)
            if result.kind == "q1":
                assert result.value == pytest.approx(
                    engine.execute_q1(query).mean, abs=1e-12
                )
            elif result.kind == "count":
                assert result.value == engine.cardinality(query)
            else:
                answer = engine.execute_q2(query)
                intercept, slope = result.value[0]
                assert intercept == pytest.approx(answer.coefficients[0], abs=1e-9)
                assert np.allclose(slope, answer.coefficients[1:], atol=1e-9)

    def test_exact_requires_engine(self, half_model):
        service = AnalyticsService(models={TABLE: half_model})
        with pytest.raises(SQLSyntaxError):
            service.execute(
                f"SELECT AVG(u) FROM {TABLE} WITHIN 0.1 OF (0.5, 0.5)", mode="exact"
            )

    def test_empty_subspace_script_contract(self, service):
        results = service.execute_script(
            [
                f"SELECT AVG(u) FROM {TABLE} WITHIN 0.001 OF (5.0, 5.0)",
                f"SELECT REGRESSION(u) FROM {TABLE} WITHIN 0.001 OF (5.0, 5.0)",
                f"SELECT COUNT(*) FROM {TABLE} WITHIN 0.001 OF (5.0, 5.0)",
            ],
            mode="exact",
        )
        assert results[0].value is None and results[0].empty
        assert results[1].value is None and results[1].empty
        # A count over an empty subspace is a defined answer: 0.
        assert results[2].value == 0 and not results[2].empty

    def test_empty_subspace_single_statement_raises_cleanly(self, service):
        for projection in ("AVG(u)", "REGRESSION(u)"):
            with pytest.raises(EmptySubspaceError):
                service.execute(
                    f"SELECT {projection} FROM {TABLE} WITHIN 0.001 OF (5.0, 5.0)",
                    mode="exact",
                )
        assert (
            service.execute(
                f"SELECT COUNT(*) FROM {TABLE} WITHIN 0.001 OF (5.0, 5.0)",
                mode="exact",
            )
            == 0
        )


class TestModelMode:
    def test_count_rejected(self, service):
        with pytest.raises(SQLSyntaxError):
            service.execute(
                f"SELECT COUNT(*) FROM {TABLE} WITHIN 0.1 OF (0.2, 0.2)", mode="model"
            )

    def test_model_required(self, engine):
        service = AnalyticsService(engines={TABLE: engine})
        with pytest.raises(SQLSyntaxError):
            service.execute(
                f"SELECT AVG(u) FROM {TABLE} WITHIN 0.1 OF (0.2, 0.2)", mode="model"
            )

    def test_q1_and_q2_match_model_batches(self, service, half_model):
        statements = [
            f"SELECT AVG(u) FROM {TABLE} WITHIN 0.1 OF (0.2, 0.2)",
            f"SELECT REGRESSION(u) FROM {TABLE} WITHIN 0.1 OF (0.3, 0.25)",
        ]
        results = service.execute_script(statements, mode="model")
        q1_query = results[0].statement.to_query(half_model.config.norm_order)
        assert results[0].value == pytest.approx(
            half_model.predict_mean(q1_query), abs=1e-12
        )
        q2_query = results[1].statement.to_query(half_model.config.norm_order)
        planes = half_model.regression_models(q2_query)
        assert len(results[1].value) == len(planes)
        for (intercept, slope), plane in zip(results[1].value, planes):
            assert intercept == pytest.approx(plane.intercept, abs=1e-12)
            assert np.allclose(slope, plane.slope, atol=1e-12)


class TestHybridMode:
    def test_hybrid_partitions_model_and_fallback(self, service, engine, half_model):
        statements = _mixed_statements(60)
        results = service.execute_script(statements, mode="hybrid")
        sources = {result.source for result in results}
        assert "model" in sources and "fallback" in sources
        order = half_model.config.norm_order
        covered = half_model.coverage_batch(
            [r.statement.to_query(order) for r in results]
        )
        for result, is_covered in zip(results, covered):
            query = result.statement.to_query(order)
            if result.kind == "count":
                assert result.source == "exact"
                assert result.value == engine.cardinality(query)
                continue
            assert result.source == ("model" if is_covered else "fallback")
            if result.kind == "q1":
                if is_covered:
                    assert result.value == pytest.approx(
                        half_model.predict_mean(query), abs=1e-12
                    )
                else:
                    assert result.value == pytest.approx(
                        engine.execute_q1(query).mean, abs=1e-12
                    )
            elif result.kind == "q2":
                if is_covered:
                    planes = half_model.regression_models(query)
                    assert [pair[0] for pair in result.value] == pytest.approx(
                        [plane.intercept for plane in planes], abs=1e-12
                    )
                else:
                    answer = engine.execute_q2(query)
                    intercept, slope = result.value[0]
                    assert intercept == pytest.approx(
                        answer.coefficients[0], abs=1e-9
                    )
                    assert np.allclose(slope, answer.coefficients[1:], atol=1e-9)

    def test_fallback_rate_reported(self, service):
        statements = [
            f"SELECT AVG(u) FROM {TABLE} WITHIN 0.05 OF ({float(x)!r}, 0.9)"
            for x in np.linspace(0.6, 0.95, 10)
        ]
        service.execute_script(statements, mode="hybrid")
        stats = service.statistics_for(TABLE)
        assert stats.fallback_rate > 0.0
        assert stats.statements_executed == 10
        partition = stats.model_answered + stats.exact_answered + stats.fallback_count
        assert partition == stats.statements_executed

    def test_hybrid_without_model_serves_exact(self, engine):
        service = AnalyticsService(engines={TABLE: engine})
        value = service.execute(
            f"SELECT AVG(u) FROM {TABLE} WITHIN 0.2 OF (0.5, 0.5)", mode="hybrid"
        )
        query = Query(center=np.array([0.5, 0.5]), radius=0.2)
        assert value == pytest.approx(engine.execute_q1(query).mean, abs=1e-12)
        assert service.statistics_for(TABLE).fallback_count == 0

    def test_hybrid_without_engine_serves_model(self, half_model):
        service = AnalyticsService(models={TABLE: half_model})
        # Out-of-coverage statement: no exact tier, so the model
        # extrapolates rather than failing.
        value = service.execute(
            f"SELECT AVG(u) FROM {TABLE} WITHIN 0.05 OF (0.9, 0.9)", mode="hybrid"
        )
        query = Query(
            center=np.array([0.9, 0.9]),
            radius=0.05,
            norm_order=half_model.config.norm_order,
        )
        assert value == pytest.approx(half_model.predict_mean(query), abs=1e-12)

    def test_hybrid_with_unfitted_model_falls_back(self, engine):
        service = AnalyticsService(
            engines={TABLE: engine}, models={TABLE: LLMModel(dimension=2)}
        )
        value = service.execute(
            f"SELECT AVG(u) FROM {TABLE} WITHIN 0.2 OF (0.5, 0.5)", mode="hybrid"
        )
        query = Query(center=np.array([0.5, 0.5]), radius=0.2)
        assert value == pytest.approx(engine.execute_q1(query).mean, abs=1e-12)
        assert service.statistics_for(TABLE).fallback_count == 1

    def test_hybrid_empty_fallback_is_documented_empty(self, service):
        [result] = service.execute_script(
            [f"SELECT AVG(u) FROM {TABLE} WITHIN 0.001 OF (5.0, 5.0)"],
            mode="hybrid",
        )
        assert result.source == "fallback"
        assert result.value is None and result.empty


class TestShardedServing:
    def test_sharded_engine_with_auto_route_matches_single(self, engine, half_model):
        with ShardedQueryEngine(
            engine.dataset, num_shards=4, backend="serial"
        ) as sharded:
            service = AnalyticsService(
                engines={TABLE: sharded}, models={TABLE: half_model}, route="auto"
            )
            assert service.route == "auto"
            statements = _mixed_statements(24)
            results = service.execute_script(statements, mode="hybrid")
        reference = AnalyticsService(
            engines={TABLE: engine}, models={TABLE: half_model}
        ).execute_script(statements, mode="hybrid")
        for sharded_result, single_result in zip(results, reference):
            assert sharded_result.source == single_result.source
            if sharded_result.kind == "q1" and sharded_result.value is not None:
                assert sharded_result.value == pytest.approx(
                    single_result.value, abs=1e-9
                )
            elif sharded_result.kind == "count":
                assert sharded_result.value == single_result.value


class TestStatisticsViews:
    def test_per_table_and_aggregate(self, engine, half_model):
        other_engine = ExactQueryEngine(_dataset(size=600, seed=5))
        service = AnalyticsService(
            engines={TABLE: engine, "other": other_engine},
            models={TABLE: half_model},
        )
        service.execute_script(
            [
                f"SELECT AVG(u) FROM {TABLE} WITHIN 0.1 OF (0.2, 0.2)",
                "SELECT AVG(u) FROM other WITHIN 0.2 OF (0.5, 0.5)",
            ],
            mode="hybrid",
        )
        per_table = service.per_table_statistics
        assert set(per_table) == {TABLE, "other"}
        aggregate = service.statistics
        assert aggregate.statements_executed == 2
        assert aggregate.total_seconds > 0.0
        service.reset_statistics()
        assert service.statistics.statements_executed == 0

    def test_unknown_mode_rejected(self, service):
        with pytest.raises(SQLSyntaxError):
            service.execute_script([], mode="bogus")


class TestSessionFacade:
    def test_sessions_share_a_service(self, engine, half_model):
        service = AnalyticsService(
            engines={TABLE: engine}, models={TABLE: half_model}
        )
        first = AnalyticsSession(service=service)
        second = AnalyticsSession(service=service)
        first.execute(f"SELECT AVG(u) FROM {TABLE} WITHIN 0.1 OF (0.2, 0.2)")
        second.execute(
            f"SELECT AVG(u) FROM {TABLE} WITHIN 0.1 OF (0.3, 0.3)", mode="hybrid"
        )
        assert service.statistics.statements_executed == 2
        assert first.tables == second.tables == [TABLE]

    def test_service_and_registries_mutually_exclusive(self, engine):
        with pytest.raises(ConfigurationError):
            AnalyticsSession(engines={TABLE: engine}, service=AnalyticsService())

    def test_session_script_defaults_to_exact(self, engine, half_model):
        # The session facade keeps the seed front end's exact-by-default
        # contract on both entry points; hybrid is opt-in.
        session = AnalyticsSession(engines={TABLE: engine}, models={TABLE: half_model})
        sql = f"SELECT AVG(u) FROM {TABLE} WITHIN 0.1 OF (0.2, 0.2)"
        [result] = session.execute_script([sql])
        assert result.source == "exact"
        assert result.value == pytest.approx(session.execute(sql), abs=1e-12)

    def test_session_execute_script_modes(self, engine, half_model):
        session = AnalyticsSession(engines={TABLE: engine}, models={TABLE: half_model})
        results = session.execute_script(
            f"SELECT AVG(u) FROM {TABLE} WITHIN 0.1 OF (0.2, 0.2);\n"
            f"-- a comment\n"
            f"SELECT AVG(u) FROM {TABLE} WITHIN 0.1 OF (0.3, 0.2);",
            mode="approximate",
        )
        assert len(results) == 2
        assert all(result.source == "model" for result in results)
        # COUNT composes with hybrid scripts (served exactly) but is
        # rejected under pure model execution.
        [count_result] = session.execute_script(
            [f"SELECT COUNT(*) FROM {TABLE} WITHIN 0.1 OF (0.2, 0.2)"],
            mode="hybrid",
        )
        assert count_result.source == "exact"
        with pytest.raises(SQLSyntaxError):
            session.execute_script(
                [f"SELECT COUNT(*) FROM {TABLE} WITHIN 0.1 OF (0.2, 0.2)"],
                mode="approximate",
            )


class TestExperimentContextHelper:
    def test_serving_service_builder(self):
        from repro.eval.experiments import build_context

        context = build_context(
            "R1", dimension=2, dataset_size=1_500, training_queries=150,
            testing_queries=30, seed=11,
        )
        model, _ = context.train_model()
        service = context.serving_service(model)
        assert service.tables == [context.dataset_name]
        value = service.execute(
            f"SELECT AVG(u) FROM {context.dataset_name} WITHIN 0.15 OF (0.5, 0.5)",
            mode="hybrid",
        )
        assert np.isfinite(value)


# --------------------------------------------------------------------- #
# latency histogram + concurrency counters
# --------------------------------------------------------------------- #
class TestLatencyHistogram:
    def test_empty_percentile_is_zero(self):
        from repro.dbms.serving import LatencyHistogram

        hist = LatencyHistogram()
        assert hist.total_count == 0
        assert hist.percentile(50) == 0.0
        assert hist.percentile(99) == 0.0

    def test_percentile_bounds_validated(self):
        from repro.dbms.serving import LatencyHistogram

        hist = LatencyHistogram()
        with pytest.raises(ConfigurationError):
            hist.percentile(-1)
        with pytest.raises(ConfigurationError):
            hist.percentile(100.5)

    def test_percentile_within_bucket_resolution(self):
        from repro.dbms.serving import LatencyHistogram

        hist = LatencyHistogram()
        for _ in range(99):
            hist.record(1e-4)
        hist.record(1e-1)
        # 8 buckets/decade: the midpoint estimate is within ~35% of truth.
        assert hist.percentile(50) == pytest.approx(1e-4, rel=0.35)
        assert hist.percentile(100) == pytest.approx(1e-1, rel=0.35)
        # Monotone in q.
        assert hist.percentile(99) <= hist.percentile(100)

    def test_merge_is_exact(self):
        from repro.dbms.serving import LatencyHistogram

        left, right, together = (
            LatencyHistogram(),
            LatencyHistogram(),
            LatencyHistogram(),
        )
        samples_left = [1e-5, 3e-4, 2e-3, 5e-2]
        samples_right = [7e-6, 4e-3, 0.5, 2.0]
        left.record_many(samples_left)
        right.record_many(samples_right)
        together.record_many(samples_left + samples_right)
        left.merge(right)
        assert np.array_equal(left.counts, together.counts)
        for q in (50, 90, 99):
            assert left.percentile(q) == together.percentile(q)

    def test_under_and_overflow_buckets(self):
        from repro.dbms.serving import LatencyHistogram, _LATENCY_EDGES

        hist = LatencyHistogram()
        hist.record(1e-9)  # below the first edge
        assert hist.percentile(50) == _LATENCY_EDGES[0]
        hist.reset()
        hist.record(1e5)  # above the last edge
        assert hist.percentile(50) == _LATENCY_EDGES[-1]

    def test_copy_is_independent(self):
        from repro.dbms.serving import LatencyHistogram

        hist = LatencyHistogram()
        hist.record(0.01)
        frozen = hist.copy()
        hist.record(0.01, count=10)
        assert frozen.total_count == 1
        assert hist.total_count == 11


class TestConcurrencyCounters:
    def test_record_batch_tracks_coalescing_and_cache(self):
        stats = ServingStatistics()
        stats.record_batch(10, seconds=0.01, coalesce_width=4)
        stats.record_batch(5, seconds=0.01, coalesce_width=1)
        stats.record_batch(3, seconds=0.0, cache_hits=3)
        assert stats.coalesced_batches == 1  # only width > 1 counts
        assert stats.max_coalesce_width == 4
        assert stats.mean_coalesce_width == pytest.approx(2.0)
        assert stats.cache_hits == 3
        assert stats.cache_hit_rate == pytest.approx(3 / 18)

    def test_latency_seconds_overrides_amortised_recording(self):
        stats = ServingStatistics()
        stats.record_batch(
            2, seconds=1.0, latency_seconds=[0.001, 0.001]
        )
        # The histogram saw the true per-statement latencies (~1 ms), not
        # the amortised 0.5 s share of the batch wall-clock.
        assert stats.p99_seconds < 0.01

    def test_merge_and_snapshot_cover_new_fields(self):
        first = ServingStatistics()
        second = ServingStatistics()
        first.record_batch(4, seconds=0.01, coalesce_width=2, cache_hits=1)
        second.record_batch(6, seconds=0.02, coalesce_width=3, cache_hits=2)
        frozen = first.snapshot()
        first.merge(second)
        assert first.cache_hits == 3
        assert first.coalesced_batches == 2
        assert first.coalesce_width_sum == 5
        assert first.max_coalesce_width == 3
        assert first.latency.total_count == 10
        # The earlier snapshot is fully independent (histogram included).
        assert frozen.cache_hits == 1
        assert frozen.latency.total_count == 4
        first.reset()
        assert first.latency.total_count == 0
        assert first.max_coalesce_width == 0

    def test_merge_arithmetic_on_concurrency_counters(self):
        # Sums for the additive counters, max for the width watermark —
        # in both merge directions.
        wide = ServingStatistics()
        wide.record_batch(8, seconds=0.01, coalesce_width=5, cache_hits=4)
        narrow = ServingStatistics()
        narrow.record_batch(2, seconds=0.01, coalesce_width=2, cache_hits=1)
        narrow.merge(wide)
        assert narrow.cache_hits == 5
        assert narrow.coalesce_width_sum == 7
        assert narrow.max_coalesce_width == 5  # max climbs to the donor's
        wide.merge(ServingStatistics())  # empty donor changes nothing
        assert wide.max_coalesce_width == 5
        assert wide.cache_hits == 4

    def test_export_metrics_flattens_counters_and_percentiles(self):
        stats = ServingStatistics()
        stats.record_batch(
            4,
            model_answered=3,
            fallbacks=1,
            seconds=0.02,
            coalesce_width=2,
            cache_hits=2,
            latency_seconds=[0.001, 0.002, 0.003, 0.004],
        )
        exported = stats.export_metrics(prefix="srv_")
        assert exported["srv_statements_executed"] == 4.0
        assert exported["srv_cache_hits"] == 2.0
        assert exported["srv_cache_hit_rate"] == pytest.approx(0.5)
        assert exported["srv_max_coalesce_width"] == 2.0
        assert exported["srv_fallback_rate"] == pytest.approx(0.25)
        assert 0.0 < exported["srv_p50_seconds"] <= exported["srv_p99_seconds"]
        assert all(isinstance(v, float) for v in exported.values())
        # No prefix by default, same keys.
        assert set(stats.export_metrics()) == {
            k.removeprefix("srv_") for k in exported
        }

    def test_snapshot_histogram_does_not_alias_under_concurrent_merge(self):
        import threading

        shared = ServingStatistics()
        shared.record_batch(1, seconds=0.001, coalesce_width=1)
        stop = threading.Event()

        def merger():
            while not stop.is_set():
                delta = ServingStatistics()
                delta.record_batch(3, seconds=0.003, coalesce_width=2)
                shared.merge(delta)

        thread = threading.Thread(target=merger)
        thread.start()
        try:
            # Each snapshot's histogram must be a deep copy: its counts
            # stay frozen while merges keep mutating the shared instance.
            frozen = []
            for _ in range(200):
                snap = shared.snapshot()
                frozen.append((snap, snap.latency.total_count))
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert not thread.is_alive()
        for snap, count_at_capture in frozen:
            assert snap.latency.total_count == count_at_capture
        assert shared.latency.total_count > frozen[0][1]
