"""Equivalence suite: batch query processing vs the single-query path.

The batch engine (``predict_mean_batch`` / ``predict_q2_batch`` /
``predict_value_batch``) computes the full ``(m, K)`` overlap-degree matrix
and the weighted LLM evaluations as matrix operations.  These tests assert
that the batched answers agree with the per-query path to within 1e-12
across dimensions d in {1, 2, 6}, including the zero-overlap extrapolation
branch and the (defensive) all-degrees-zero uniform-weight branch, and that
the prototype-pruning index never changes a single-query answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig, TrainingConfig
from repro.core.model import LLMModel
from repro.core.prediction import (
    NeighborhoodPredictor,
    normalized_overlap_weights,
    normalized_weight_rows,
)
from repro.core.prototypes import LocalLinearMap
from repro.exceptions import DimensionalityMismatchError, InvalidQueryError
from repro.queries.geometry import overlap_degree, overlap_degree_matrix
from repro.queries.query import Query

DIMENSIONS = (1, 2, 6)
TOLERANCE = 1e-12


def _synthetic_maps(dimension: int, count: int = 40, seed: int = 5) -> list[LocalLinearMap]:
    rng = np.random.default_rng(seed)
    maps = []
    for _ in range(count):
        center = rng.uniform(0.0, 1.0, size=dimension)
        radius = rng.uniform(0.05, 0.3)
        prototype = np.concatenate([center, [radius]])
        slope = rng.normal(0.0, 1.0, size=dimension + 1)
        maps.append(
            LocalLinearMap(
                prototype=prototype,
                mean_output=float(rng.normal(0.0, 2.0)),
                slope=slope,
            )
        )
    return maps


def _mixed_queries(dimension: int, count: int = 60, seed: int = 11) -> list[Query]:
    """Queries inside the prototype cloud plus far-away extrapolation probes."""
    rng = np.random.default_rng(seed)
    queries = []
    for index in range(count):
        if index % 7 == 0:
            # Far outside [0, 1]^d with a tiny radius: empty overlap set.
            center = rng.uniform(8.0, 9.0, size=dimension)
            radius = 0.01
        else:
            center = rng.uniform(0.0, 1.0, size=dimension)
            radius = float(rng.uniform(0.02, 0.4))
        queries.append(Query(center=center, radius=radius))
    return queries


@pytest.fixture(params=DIMENSIONS, scope="module")
def setup(request):
    dimension = request.param
    maps = _synthetic_maps(dimension)
    predictor = NeighborhoodPredictor(maps, use_pruning_index=False)
    queries = _mixed_queries(dimension)
    matrix = np.vstack([query.to_vector() for query in queries])
    return dimension, maps, predictor, queries, matrix


class TestOverlapDegreeMatrix:
    def test_matches_scalar_overlap_degree(self, setup):
        dimension, maps, predictor, queries, matrix = setup
        degrees = overlap_degree_matrix(
            matrix[:, :-1],
            matrix[:, -1],
            predictor._prototypes[:, :-1],
            predictor._prototypes[:, -1],
        )
        for i, query in enumerate(queries[:10]):
            for k, llm in enumerate(maps):
                expected = overlap_degree(
                    query.center, query.radius, llm.center, llm.radius
                )
                assert degrees[i, k] == pytest.approx(expected, abs=TOLERANCE)

    @pytest.mark.parametrize("p", [1.0, 2.0, 3.0, np.inf])
    def test_norm_orders(self, setup, p):
        dimension, maps, _, _, _ = setup
        rng = np.random.default_rng(3)
        centers = rng.uniform(0, 1, size=(5, dimension))
        radii = rng.uniform(0.05, 0.5, size=5)
        protos = np.vstack([llm.prototype for llm in maps])
        degrees = overlap_degree_matrix(centers, radii, protos[:, :-1], protos[:, -1], p=p)
        for i in range(5):
            for k, llm in enumerate(maps):
                expected = overlap_degree(
                    centers[i], radii[i], llm.center, llm.radius, p=p
                )
                assert degrees[i, k] == pytest.approx(expected, abs=TOLERANCE)


class TestQ1Equivalence:
    def test_batch_matches_single(self, setup):
        _, _, predictor, queries, matrix = setup
        batch = predictor.predict_mean_batch(matrix)
        single = np.array([predictor.predict_mean(query) for query in queries])
        assert batch.shape == single.shape
        np.testing.assert_allclose(batch, single, rtol=0.0, atol=TOLERANCE)

    def test_extrapolation_branch_is_exercised(self, setup):
        _, _, predictor, queries, _ = setup
        flags = [
            predictor.predict_mean_with_diagnostics(query)[1].extrapolated
            for query in queries
        ]
        assert any(flags) and not all(flags)

    def test_batch_reports_extrapolated_rows(self, setup):
        _, _, predictor, queries, matrix = setup
        _, extrapolated = predictor._batch_neighborhood(matrix, norm_order=2.0)
        expected = np.array(
            [
                predictor.predict_mean_with_diagnostics(query)[1].extrapolated
                for query in queries
            ]
        )
        np.testing.assert_array_equal(extrapolated, expected)


class TestQ2Equivalence:
    def test_batch_planes_match_single(self, setup):
        _, _, predictor, queries, matrix = setup
        batch = predictor.predict_q2_batch(matrix)
        assert len(batch) == len(queries)
        for planes, query in zip(batch, queries):
            expected = predictor.regression_models(query)
            assert len(planes) == len(expected)
            for plane, reference in zip(planes, expected):
                assert plane.weight == pytest.approx(reference.weight, abs=TOLERANCE)
                assert plane.intercept == pytest.approx(
                    reference.intercept, abs=TOLERANCE
                )
                np.testing.assert_allclose(
                    plane.slope, reference.slope, rtol=0.0, atol=TOLERANCE
                )


class TestValuePredictionEquivalence:
    def test_batch_matches_single(self, setup):
        dimension, _, predictor, _, _ = setup
        rng = np.random.default_rng(23)
        points = np.vstack(
            [
                rng.uniform(0.0, 1.0, size=(30, dimension)),
                rng.uniform(7.0, 8.0, size=(5, dimension)),  # extrapolation
            ]
        )
        radius = 0.15
        batch = predictor.predict_value_batch(points, radius)
        single = np.array(
            [predictor.predict_value(point, radius) for point in points]
        )
        np.testing.assert_allclose(batch, single, rtol=0.0, atol=TOLERANCE)


class TestPruningIndexEquivalence:
    def test_pruned_single_query_matches_full_scan(self, setup):
        _, maps, predictor, queries, _ = setup
        pruned = NeighborhoodPredictor(maps, use_pruning_index=True)
        assert pruned.uses_pruning_index
        for query in queries:
            assert pruned.predict_mean(query) == pytest.approx(
                predictor.predict_mean(query), abs=TOLERANCE
            )
            _, diag_pruned = pruned.predict_mean_with_diagnostics(query)
            _, diag_full = predictor.predict_mean_with_diagnostics(query)
            assert diag_pruned.used_indices == diag_full.used_indices
            assert diag_pruned.extrapolated == diag_full.extrapolated

    def test_auto_threshold(self):
        from repro.core.prediction import DEFAULT_PRUNING_THRESHOLD

        maps = _synthetic_maps(2, count=100)
        # Below the crossover the dense scan wins; pruning must be off by
        # default but available on request.
        assert DEFAULT_PRUNING_THRESHOLD > 100
        assert not NeighborhoodPredictor(maps).uses_pruning_index
        assert NeighborhoodPredictor(
            maps, use_pruning_index=True
        ).uses_pruning_index


class TestWeightNormalisation:
    def test_rows_match_scalar_helper(self):
        degrees = np.array([[0.5, 0.0, 0.25], [0.0, 0.0, 0.0], [0.1, 0.1, 0.0]])
        weights, extrapolated = normalized_weight_rows(degrees)
        for row_index in range(degrees.shape[0]):
            overlaps = [
                (k, float(degrees[row_index, k]))
                for k in range(degrees.shape[1])
                if degrees[row_index, k] > 0.0
            ]
            expected = dict(normalized_overlap_weights(overlaps))
            for k in range(degrees.shape[1]):
                assert weights[row_index, k] == pytest.approx(
                    expected.get(k, 0.0), abs=TOLERANCE
                )
        np.testing.assert_array_equal(extrapolated, [False, True, False])

    def test_all_degrees_zero_uniform_branch(self):
        # Just-touching balls have overlap flagged but degree zero; both the
        # scalar helper and the batched helper fall back to uniform weights.
        degrees = np.array([[0.0, 0.0, 0.0, 0.0]])
        mask = np.array([[True, False, True, False]])
        weights, extrapolated = normalized_weight_rows(degrees, overlap_mask=mask)
        scalar = dict(normalized_overlap_weights([(0, 0.0), (2, 0.0)]))
        assert not extrapolated[0]
        np.testing.assert_allclose(weights[0], [0.5, 0.0, 0.5, 0.0], atol=TOLERANCE)
        assert scalar == {0: 0.5, 2: 0.5}

    def test_mask_shape_mismatch(self):
        with pytest.raises(DimensionalityMismatchError):
            normalized_weight_rows(np.zeros((2, 3)), overlap_mask=np.zeros((2, 2), bool))


class TestModelBatchAPI:
    @pytest.fixture(scope="class")
    def trained(self) -> LLMModel:
        rng = np.random.default_rng(2)
        model = LLMModel(
            dimension=2,
            config=ModelConfig(quantization_coefficient=0.1),
            training=TrainingConfig(convergence_threshold=1e-6),
        )
        for _ in range(600):
            center = rng.uniform(0, 1, size=2)
            query = Query(center=center, radius=float(rng.uniform(0.05, 0.2)))
            model.partial_fit(query, float(center[0] + 2 * center[1]))
        return model

    def test_predict_mean_batch_matches_loop(self, trained):
        queries = _mixed_queries(2, count=40, seed=31)
        batch = trained.predict_mean_batch(queries)
        single = np.array([trained.predict_mean(query) for query in queries])
        np.testing.assert_allclose(batch, single, rtol=0.0, atol=TOLERANCE)

    def test_predict_means_delegates_to_batch(self, trained):
        queries = _mixed_queries(2, count=10, seed=37)
        np.testing.assert_allclose(
            trained.predict_means(queries),
            trained.predict_mean_batch(queries),
            rtol=0.0,
            atol=0.0,
        )

    def test_heterogeneous_norm_orders(self, trained):
        rng = np.random.default_rng(41)
        queries = [
            Query(
                center=rng.uniform(0, 1, size=2),
                radius=float(rng.uniform(0.05, 0.3)),
                norm_order=order,
            )
            for order in (1.0, 2.0, np.inf, 2.0, 1.0, 3.0)
        ]
        batch = trained.predict_mean_batch(queries)
        single = np.array([trained.predict_mean(query) for query in queries])
        np.testing.assert_allclose(batch, single, rtol=0.0, atol=TOLERANCE)

    def test_q2_batch_matches_loop(self, trained):
        queries = _mixed_queries(2, count=15, seed=43)
        batch = trained.predict_q2_batch(queries)
        for planes, query in zip(batch, queries):
            expected = trained.regression_models(query)
            assert len(planes) == len(expected)
            for plane, reference in zip(planes, expected):
                assert plane.weight == pytest.approx(reference.weight, abs=TOLERANCE)

    def test_value_batch_matches_loop(self, trained):
        rng = np.random.default_rng(47)
        points = rng.uniform(0, 1, size=(20, 2))
        batch = trained.predict_value_batch(points, 0.1)
        single = np.array([trained.predict_value(p, 0.1) for p in points])
        np.testing.assert_allclose(batch, single, rtol=0.0, atol=TOLERANCE)

    def test_raw_matrix_input(self, trained):
        queries = _mixed_queries(2, count=8, seed=53)
        matrix = np.vstack([query.to_vector() for query in queries])
        np.testing.assert_allclose(
            trained.predict_mean_batch(matrix),
            trained.predict_mean_batch(queries),
            rtol=0.0,
            atol=TOLERANCE,
        )

    def test_empty_batch(self, trained):
        assert trained.predict_mean_batch([]).shape == (0,)

    def test_invalid_matrix_rejected(self, trained):
        with pytest.raises(InvalidQueryError):
            trained.predict_mean_batch(np.array([[0.5, 0.5, -0.1]]))
        with pytest.raises(DimensionalityMismatchError):
            trained.predict_mean_batch(np.array([[0.5, 0.5]]))


class TestBatchPruningEquivalence:
    """Block-sparse candidate-union batch mode vs the dense batch path."""

    K = 600

    @pytest.fixture(scope="class")
    def predictors(self):
        # Tight prototype radii keep the pruning reach local, as in a
        # converged large-K quantization (vigilance shrinks with K).
        rng = np.random.default_rng(17)
        maps = []
        for _ in range(self.K):
            center = rng.uniform(0.0, 1.0, size=2)
            radius = rng.uniform(0.01, 0.05)
            maps.append(
                LocalLinearMap(
                    prototype=np.concatenate([center, [radius]]),
                    mean_output=float(rng.normal(0.0, 2.0)),
                    slope=rng.normal(0.0, 1.0, size=3),
                )
            )
        dense = NeighborhoodPredictor(maps, use_pruning_index=False)
        sparse = NeighborhoodPredictor(maps, use_pruning_index=True)
        return dense, sparse

    def _localized_matrix(self, count: int = 40, seed: int = 71) -> np.ndarray:
        """A localized batch (small union) with extrapolation probes mixed in."""
        rng = np.random.default_rng(seed)
        centers = np.array([0.3, 0.7]) + rng.uniform(-0.05, 0.05, size=(count, 2))
        radii = rng.uniform(0.01, 0.05, size=(count, 1))
        matrix = np.hstack([centers, radii])
        matrix[::9, :2] += 7.0  # far away: empty overlap set
        return matrix

    def test_sparse_mode_engages_on_localized_batches(self, predictors):
        _, sparse = predictors
        matrix = self._localized_matrix()
        weights, _, columns = sparse._batch_weight_matrix(matrix, 2.0)
        assert columns is not None
        assert 0 < columns.size < self.K
        assert weights.shape == (matrix.shape[0], columns.size)

    def test_union_contains_every_overlapping_prototype(self, predictors):
        dense, sparse = predictors
        matrix = self._localized_matrix()
        assert sparse._pruning_index is not None
        union = sparse._pruning_index.candidates_union(
            matrix[:, :-1], matrix[:, -1]
        )
        degrees = overlap_degree_matrix(
            matrix[:, :-1], matrix[:, -1], dense._centers, dense._radii
        )
        needed = np.nonzero(degrees.max(axis=0) > 0.0)[0]
        assert np.isin(needed, union).all()

    def test_mean_batch_matches_dense(self, predictors):
        dense, sparse = predictors
        matrix = self._localized_matrix()
        np.testing.assert_allclose(
            sparse.predict_mean_batch(matrix),
            dense.predict_mean_batch(matrix),
            rtol=0.0,
            atol=TOLERANCE,
        )

    def test_q2_batch_matches_dense(self, predictors):
        dense, sparse = predictors
        matrix = self._localized_matrix(count=20)
        for sparse_planes, dense_planes in zip(
            sparse.predict_q2_batch(matrix), dense.predict_q2_batch(matrix)
        ):
            assert len(sparse_planes) == len(dense_planes)
            for left, right in zip(sparse_planes, dense_planes):
                assert left.weight == pytest.approx(right.weight, abs=TOLERANCE)
                assert left.intercept == pytest.approx(
                    right.intercept, abs=TOLERANCE
                )
                np.testing.assert_allclose(
                    left.prototype_center, right.prototype_center, atol=0.0
                )

    def test_value_batch_matches_dense(self, predictors):
        dense, sparse = predictors
        matrix = self._localized_matrix()
        np.testing.assert_allclose(
            sparse.predict_value_batch(matrix[:, :2], 0.03),
            dense.predict_value_batch(matrix[:, :2], 0.03),
            rtol=0.0,
            atol=TOLERANCE,
        )

    def test_scattered_batch_falls_back_to_dense(self, predictors):
        _, sparse = predictors
        rng = np.random.default_rng(73)
        matrix = np.hstack(
            [rng.uniform(0, 1, size=(60, 2)), rng.uniform(0.2, 0.4, size=(60, 1))]
        )
        _, _, columns = sparse._batch_weight_matrix(matrix, 2.0)
        assert columns is None  # union covers most prototypes -> dense path


class TestExecutorQ2BatchEquivalence:
    """``execute_q2_batch`` vs the per-query ``execute_q2`` loop."""

    @pytest.fixture(params=DIMENSIONS, scope="class")
    def setup(self, request):
        from repro.data.synthetic import SyntheticDataset
        from repro.dbms.executor import ExactQueryEngine

        dimension = request.param
        rng = np.random.default_rng(29)
        inputs = rng.uniform(0, 1, size=(3_000, dimension))
        slope = rng.normal(0.0, 1.0, size=dimension)
        outputs = 1.0 + inputs @ slope + 0.05 * rng.normal(size=3_000)
        dataset = SyntheticDataset(
            inputs=inputs,
            outputs=outputs,
            name=f"q2batch{dimension}",
            domain=(0.0, 1.0),
        )
        queries = []
        for index in range(30):
            if index % 9 == 0:
                queries.append(
                    Query(center=rng.uniform(6, 7, size=dimension), radius=0.01)
                )
            elif index % 7 == 0:
                anchor = inputs[int(rng.integers(3_000))]
                queries.append(Query(center=anchor + 1e-6, radius=2e-4))
            else:
                order = (1.0, 2.0, np.inf)[index % 3]
                queries.append(
                    Query(
                        center=rng.uniform(0, 1, size=dimension),
                        radius=float(rng.uniform(0.05, 0.4)),
                        norm_order=order,
                    )
                )
        return dataset, queries

    @pytest.mark.parametrize("use_index", [True, False])
    def test_batch_matches_per_query(self, setup, use_index):
        from repro.dbms.executor import ExactQueryEngine

        dataset, queries = setup
        engine = ExactQueryEngine(dataset, use_index=use_index)
        answers = engine.execute_q2_batch(queries, on_empty="null")
        for query, answer in zip(queries, answers):
            try:
                expected = engine.execute_q2(query)
            except Exception:
                assert answer is None
                continue
            assert answer is not None
            assert answer.cardinality == expected.cardinality
            np.testing.assert_allclose(
                answer.mean, expected.mean, rtol=TOLERANCE, atol=TOLERANCE
            )
            np.testing.assert_allclose(
                answer.coefficients,
                expected.coefficients,
                rtol=1e-9,
                atol=TOLERANCE,
            )
            np.testing.assert_allclose(
                answer.r_squared, expected.r_squared, rtol=1e-9, atol=1e-9
            )

    def test_indexed_and_scan_batches_agree(self, setup):
        from repro.dbms.executor import ExactQueryEngine

        dataset, queries = setup
        indexed = ExactQueryEngine(dataset, use_index=True)
        scan = ExactQueryEngine(dataset, use_index=False)
        left = indexed.execute_q2_batch(queries, on_empty="null")
        right = scan.execute_q2_batch(queries, on_empty="null")
        for a, b in zip(left, right):
            if a is None:
                assert b is None
                continue
            assert a.cardinality == b.cardinality
            np.testing.assert_allclose(
                a.coefficients, b.coefficients, rtol=1e-9, atol=TOLERANCE
            )

    def test_on_empty_raise(self, setup):
        from repro.dbms.executor import ExactQueryEngine

        dataset, _ = setup
        engine = ExactQueryEngine(dataset)
        from repro.exceptions import EmptySubspaceError

        with pytest.raises(EmptySubspaceError):
            engine.execute_q2_batch(
                [Query(center=np.full(dataset.dimension, 9.0), radius=0.01)]
            )

    def test_empty_batch(self, setup):
        from repro.dbms.executor import ExactQueryEngine

        dataset, _ = setup
        assert ExactQueryEngine(dataset).execute_q2_batch([]) == []


class TestExecutorBatchEquivalence:
    @pytest.fixture(scope="class")
    def engine(self):
        from repro.data.synthetic import SyntheticDataset
        from repro.dbms.executor import ExactQueryEngine

        rng = np.random.default_rng(7)
        inputs = rng.uniform(0, 1, size=(4_000, 2))
        outputs = 1.0 + inputs[:, 0] - 2.0 * inputs[:, 1]
        dataset = SyntheticDataset(
            inputs=inputs, outputs=outputs, name="batch2d", domain=(0.0, 1.0)
        )
        return dataset, ExactQueryEngine(dataset)

    def test_batch_matches_single_indexed(self, engine):
        _, indexed = engine
        queries = _mixed_queries(2, count=20, seed=61)
        answers = indexed.execute_q1_batch(queries, on_empty="null")
        for query, answer in zip(queries, answers):
            try:
                expected = indexed.execute_q1(query)
            except Exception:
                assert answer is None
                continue
            assert answer is not None
            assert answer.mean == pytest.approx(expected.mean, abs=1e-12)
            assert answer.cardinality == expected.cardinality

    def test_batch_matches_single_full_scan(self, engine):
        from repro.dbms.executor import ExactQueryEngine

        dataset, _ = engine
        scan = ExactQueryEngine(dataset, use_index=False)
        queries = [
            Query(center=np.array([0.5, 0.5]), radius=0.2),
            Query(center=np.array([0.2, 0.8]), radius=0.3, norm_order=1.0),
            Query(center=np.array([0.7, 0.3]), radius=0.25, norm_order=np.inf),
        ]
        answers = scan.execute_q1_batch(queries)
        for query, answer in zip(queries, answers):
            expected = scan.execute_q1(query)
            assert answer.mean == pytest.approx(expected.mean, rel=1e-12)
            assert answer.cardinality == expected.cardinality

    def test_full_scan_sub_chunking(self, engine, monkeypatch):
        # Force a tiny memory budget so the batch is processed in several
        # (chunk, n) slices; results must be unchanged.
        import repro.dbms.executor as executor_module
        from repro.dbms.executor import ExactQueryEngine

        dataset, _ = engine
        scan = ExactQueryEngine(dataset, use_index=False)
        queries = _mixed_queries(2, count=12, seed=67)
        expected = scan.execute_q1_batch(queries, on_empty="null")
        monkeypatch.setattr(executor_module, "_BATCH_SCAN_ELEMENTS", 1)
        chunked = scan.execute_q1_batch(queries, on_empty="null")
        for left, right in zip(expected, chunked):
            if left is None:
                assert right is None
                continue
            assert right.mean == pytest.approx(left.mean, rel=1e-12)
            assert right.cardinality == left.cardinality
