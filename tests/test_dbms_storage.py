"""Tests for the SQLite-backed data store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticDataset
from repro.dbms.storage import SQLiteDataStore
from repro.exceptions import CatalogError, StorageError


@pytest.fixture()
def dataset() -> SyntheticDataset:
    rng = np.random.default_rng(0)
    inputs = rng.uniform(0, 1, size=(500, 3))
    outputs = inputs.sum(axis=1)
    return SyntheticDataset(inputs=inputs, outputs=outputs, name="demo", domain=(0.0, 1.0))


@pytest.fixture()
def store() -> SQLiteDataStore:
    with SQLiteDataStore(":memory:") as data_store:
        yield data_store


class TestLoadAndScan:
    def test_load_registers_in_catalog(self, store, dataset):
        info = store.load_dataset(dataset)
        assert info.table_name == "demo"
        assert info.dimension == 3
        assert info.row_count == 500

    def test_row_count_matches(self, store, dataset):
        store.load_dataset(dataset)
        assert store.row_count("demo") == 500

    def test_scan_round_trips_data(self, store, dataset):
        store.load_dataset(dataset)
        inputs, outputs = store.scan("demo")
        assert np.allclose(inputs, dataset.inputs)
        assert np.allclose(outputs, dataset.outputs)

    def test_load_duplicate_name_fails(self, store, dataset):
        store.load_dataset(dataset)
        with pytest.raises(StorageError):
            store.load_dataset(dataset)

    def test_custom_table_name(self, store, dataset):
        store.load_dataset(dataset, table_name="renamed")
        assert store.catalog.exists("renamed")

    def test_load_as_dataset_round_trip(self, store, dataset):
        store.load_dataset(dataset)
        rebuilt = store.load_as_dataset("demo")
        assert rebuilt.size == dataset.size
        assert np.allclose(rebuilt.inputs, dataset.inputs)
        assert rebuilt.domain == dataset.domain


class TestScanRowRange:
    """Boundary cases of the shard loader used by ``ShardedQueryEngine``."""

    def test_empty_range_returns_typed_empty_arrays(self, store, dataset):
        store.load_dataset(dataset)
        inputs, outputs = store.scan_row_range("demo", 120, 120)
        assert inputs.shape == (0, dataset.dimension)
        assert outputs.shape == (0,)

    def test_range_past_end_is_clipped(self, store, dataset):
        store.load_dataset(dataset)
        inputs, outputs = store.scan_row_range("demo", 490, 10_000)
        assert inputs.shape == (10, dataset.dimension)
        np.testing.assert_allclose(inputs, dataset.inputs[490:])
        np.testing.assert_allclose(outputs, dataset.outputs[490:])

    def test_range_entirely_past_end_is_empty(self, store, dataset):
        store.load_dataset(dataset)
        inputs, outputs = store.scan_row_range("demo", 500, 600)
        assert inputs.shape == (0, dataset.dimension)
        assert outputs.shape == (0,)

    def test_full_table_range_round_trips(self, store, dataset):
        store.load_dataset(dataset)
        inputs, outputs = store.scan_row_range("demo", 0, dataset.size)
        np.testing.assert_allclose(inputs, dataset.inputs)
        np.testing.assert_allclose(outputs, dataset.outputs)

    def test_invalid_bounds_raise(self, store, dataset):
        store.load_dataset(dataset)
        with pytest.raises(StorageError):
            store.scan_row_range("demo", -1, 10)
        with pytest.raises(StorageError):
            store.scan_row_range("demo", 10, 5)

    def test_disjoint_windows_partition_exactly(self, store, dataset):
        store.load_dataset(dataset)
        windows = [
            store.scan_row_range("demo", start, start + 100)
            for start in range(0, 500, 100)
        ]
        np.testing.assert_allclose(
            np.vstack([inputs for inputs, _ in windows]), dataset.inputs
        )
        np.testing.assert_allclose(
            np.concatenate([outputs for _, outputs in windows]), dataset.outputs
        )

    def test_load_row_range_as_dataset(self, store, dataset):
        store.load_dataset(dataset)
        window = store.load_row_range_as_dataset("demo", 50, 150)
        assert window.size == 100
        assert window.domain == dataset.domain
        np.testing.assert_allclose(window.inputs, dataset.inputs[50:150])
        np.testing.assert_allclose(window.outputs, dataset.outputs[50:150])

    def test_load_row_range_as_dataset_rejects_empty_window(self, store, dataset):
        store.load_dataset(dataset)
        with pytest.raises(StorageError):
            store.load_row_range_as_dataset("demo", 500, 600)


class TestAppendAndDrop:
    def test_append_rows_updates_count(self, store, dataset):
        store.load_dataset(dataset)
        extra_inputs = np.random.default_rng(1).uniform(0, 1, size=(20, 3))
        store.append_rows("demo", extra_inputs, extra_inputs.sum(axis=1))
        assert store.row_count("demo") == 520
        assert store.catalog.get("demo").row_count == 520

    def test_append_dimension_mismatch(self, store, dataset):
        store.load_dataset(dataset)
        with pytest.raises(StorageError):
            store.append_rows("demo", np.ones((5, 2)), np.ones(5))

    def test_append_row_count_mismatch(self, store, dataset):
        store.load_dataset(dataset)
        with pytest.raises(StorageError):
            store.append_rows("demo", np.ones((5, 3)), np.ones(4))

    def test_drop_table(self, store, dataset):
        store.load_dataset(dataset)
        store.drop_table("demo")
        assert not store.catalog.exists("demo")

    def test_drop_unknown_table(self, store):
        with pytest.raises(CatalogError):
            store.drop_table("missing")


class TestBoundingBoxScan:
    def test_selects_only_rows_in_box(self, store, dataset):
        store.load_dataset(dataset)
        lower = [0.0, 0.0, 0.0]
        upper = [0.5, 0.5, 0.5]
        inputs, outputs = store.scan_bounding_box("demo", lower, upper)
        assert inputs.shape[0] == outputs.shape[0]
        assert np.all(inputs >= 0.0) and np.all(inputs <= 0.5)
        expected = np.sum(np.all(dataset.inputs <= 0.5, axis=1))
        assert inputs.shape[0] == expected

    def test_empty_box_returns_empty_arrays(self, store, dataset):
        store.load_dataset(dataset)
        inputs, outputs = store.scan_bounding_box("demo", [2.0] * 3, [3.0] * 3)
        assert inputs.shape == (0, 3)
        assert outputs.shape == (0,)

    def test_wrong_bounds_dimension(self, store, dataset):
        store.load_dataset(dataset)
        with pytest.raises(StorageError):
            store.scan_bounding_box("demo", [0.0], [1.0])


class TestBatchesAndIndexes:
    def test_iter_batches_covers_all_rows(self, store, dataset):
        store.load_dataset(dataset)
        total = sum(batch[1].shape[0] for batch in store.iter_batches("demo", batch_size=128))
        assert total == 500

    def test_iter_batches_bad_batch_size(self, store, dataset):
        store.load_dataset(dataset)
        with pytest.raises(StorageError):
            list(store.iter_batches("demo", batch_size=0))

    def test_create_value_index_is_idempotent(self, store, dataset):
        store.load_dataset(dataset)
        store.create_value_index("demo")
        store.create_value_index("demo")


class TestLifecycle:
    def test_operations_after_close_fail(self, dataset):
        store = SQLiteDataStore(":memory:")
        store.load_dataset(dataset)
        store.close()
        with pytest.raises(StorageError):
            store.scan("demo")

    def test_on_disk_store_persists(self, tmp_path, dataset):
        path = tmp_path / "data.db"
        with SQLiteDataStore(path) as store:
            store.load_dataset(dataset)
        with SQLiteDataStore(path) as reopened:
            assert reopened.catalog.exists("demo")
            assert reopened.row_count("demo") == 500
