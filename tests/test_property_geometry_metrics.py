"""Property-based tests for the geometry primitives and metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.regression import cod, fvu, rmse, sum_of_squared_residuals, total_sum_of_squares
from repro.queries.geometry import (
    balls_overlap,
    lp_distance,
    overlap_degree,
    pairwise_lp_distance,
)
from repro.queries.query import Query

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
vectors = arrays(dtype=float, shape=st.integers(1, 6), elements=finite_floats)
radii = st.floats(min_value=1e-3, max_value=10.0, allow_nan=False)


def _pair_of_vectors(draw):
    dimension = draw(st.integers(1, 6))
    element = st.floats(min_value=-50, max_value=50, allow_nan=False)
    first = draw(arrays(dtype=float, shape=dimension, elements=element))
    second = draw(arrays(dtype=float, shape=dimension, elements=element))
    return first, second


vector_pairs = st.composite(_pair_of_vectors)()


class TestDistanceProperties:
    @given(vector_pairs)
    @settings(max_examples=80, deadline=None)
    def test_symmetry(self, pair):
        first, second = pair
        assert lp_distance(first, second) == pytest.approx(
            lp_distance(second, first), rel=1e-9, abs=1e-9
        )

    @given(vectors)
    @settings(max_examples=80, deadline=None)
    def test_identity(self, vector):
        assert lp_distance(vector, vector) == 0.0

    @given(vector_pairs, st.sampled_from([1.0, 2.0, 3.0, np.inf]))
    @settings(max_examples=80, deadline=None)
    def test_non_negative(self, pair, order):
        first, second = pair
        assert lp_distance(first, second, p=order) >= 0.0

    @given(vector_pairs)
    @settings(max_examples=60, deadline=None)
    def test_norm_ordering(self, pair):
        # L1 >= L2 >= Linf for any pair of vectors.
        first, second = pair
        l1 = lp_distance(first, second, p=1)
        l2 = lp_distance(first, second, p=2)
        linf = lp_distance(first, second, p=np.inf)
        assert l1 + 1e-9 >= l2 >= linf - 1e-9

    @given(vector_pairs)
    @settings(max_examples=60, deadline=None)
    def test_pairwise_matches_scalar(self, pair):
        first, second = pair
        batch = pairwise_lp_distance(np.vstack([first, second]), second)
        assert batch[0] == pytest.approx(lp_distance(first, second), rel=1e-9, abs=1e-9)
        assert batch[1] == pytest.approx(0.0, abs=1e-12)


class TestOverlapProperties:
    @given(vector_pairs, radii, radii)
    @settings(max_examples=100, deadline=None)
    def test_degree_in_unit_interval(self, pair, radius_a, radius_b):
        first, second = pair
        degree = overlap_degree(first, radius_a, second, radius_b)
        assert 0.0 <= degree <= 1.0

    @given(vector_pairs, radii, radii)
    @settings(max_examples=100, deadline=None)
    def test_degree_positive_implies_overlap(self, pair, radius_a, radius_b):
        first, second = pair
        degree = overlap_degree(first, radius_a, second, radius_b)
        if degree > 0.0:
            assert balls_overlap(first, radius_a, second, radius_b)

    @given(vector_pairs, radii, radii)
    @settings(max_examples=100, deadline=None)
    def test_degree_symmetry(self, pair, radius_a, radius_b):
        first, second = pair
        forward = overlap_degree(first, radius_a, second, radius_b)
        backward = overlap_degree(second, radius_b, first, radius_a)
        assert forward == pytest.approx(backward, abs=1e-12)

    @given(vectors, radii)
    @settings(max_examples=60, deadline=None)
    def test_identical_queries_have_maximal_degree(self, center, radius):
        assert overlap_degree(center, radius, center, radius) == pytest.approx(1.0)


class TestQueryVectorProperties:
    @given(vectors, radii)
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, center, radius):
        query = Query(center=center, radius=radius)
        rebuilt = Query.from_vector(query.to_vector())
        assert np.allclose(rebuilt.center, query.center)
        assert rebuilt.radius == pytest.approx(query.radius)

    @given(vectors, radii, radii)
    @settings(max_examples=80, deadline=None)
    def test_distance_to_self_variant_is_radius_difference(self, center, r1, r2):
        first = Query(center=center, radius=r1)
        second = Query(center=center, radius=r2)
        assert first.distance_to(second) == pytest.approx(abs(r1 - r2), abs=1e-9)


predictions = arrays(
    dtype=float,
    shape=st.integers(2, 40),
    elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
)


class TestMetricProperties:
    @given(predictions)
    @settings(max_examples=80, deadline=None)
    def test_rmse_zero_iff_equal(self, values):
        assert rmse(values, values) == 0.0

    @given(predictions, predictions)
    @settings(max_examples=80, deadline=None)
    def test_rmse_non_negative(self, actual, predicted):
        n = min(len(actual), len(predicted))
        assert rmse(actual[:n], predicted[:n]) >= 0.0

    @given(predictions)
    @settings(max_examples=80, deadline=None)
    def test_fvu_cod_sum_to_one(self, actual):
        rng = np.random.default_rng(0)
        predicted = actual + rng.normal(0, 1.0, size=actual.shape)
        if np.var(actual) < 1e-9:
            return
        assert fvu(actual, predicted) + cod(actual, predicted) == pytest.approx(1.0)

    @given(predictions)
    @settings(max_examples=80, deadline=None)
    def test_mean_prediction_gives_unit_fvu(self, actual):
        if np.var(actual) < 1e-9:
            return
        predicted = np.full_like(actual, float(np.mean(actual)))
        assert fvu(actual, predicted) == pytest.approx(1.0)

    @given(predictions, predictions)
    @settings(max_examples=80, deadline=None)
    def test_ssr_bounded_by_decomposition(self, actual, predicted):
        n = min(len(actual), len(predicted))
        actual, predicted = actual[:n], predicted[:n]
        ssr = sum_of_squared_residuals(actual, predicted)
        assert ssr >= 0.0
        assert total_sum_of_squares(actual) >= 0.0
