"""Quickstart: train a query-driven model and answer analytics queries.

This walks through the full system context of the paper (Figure 2):

1. generate a non-linear dataset (the Rosenbrock benchmark, used as the
   paper's synthetic dataset R2) and load it into an exact query engine,
2. execute a stream of random mean-value (Q1) queries against the engine
   and train the Local Linear Mapping model from the (query, answer) pairs,
3. answer unseen Q1 and Q2 (regression) queries from the model alone —
   no data access — and compare against the exact answers.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    ExactQueryEngine,
    LLMModel,
    ModelConfig,
    Query,
    QueryWorkloadGenerator,
    RadiusDistribution,
    StreamingTrainer,
    TrainingConfig,
    WorkloadSpec,
    make_rosenbrock_dataset,
    rmse,
)
from repro.data.synthetic import normalize_dataset


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Build the dataset and the exact engine (the "DBMS" of Figure 2).
    # ------------------------------------------------------------------ #
    print("Generating a 40,000-row Rosenbrock dataset (d = 2)...")
    dataset = normalize_dataset(make_rosenbrock_dataset(40_000, dimension=2, seed=7))
    engine = ExactQueryEngine(dataset)

    # ------------------------------------------------------------------ #
    # 2. Train the model from executed queries.
    # ------------------------------------------------------------------ #
    spec = WorkloadSpec(
        dimension=2,
        center_low=0.0,
        center_high=1.0,
        radius=RadiusDistribution(mean=0.1, std=0.03),
    )
    generator = QueryWorkloadGenerator(spec, seed=1)
    training_queries = generator.generate(2_000)

    model = LLMModel(
        dimension=2,
        config=ModelConfig(quantization_coefficient=0.05),
        training=TrainingConfig(convergence_threshold=0.002),
    )
    trainer = StreamingTrainer(model, engine)
    print("Training from the query stream (exact execution + online updates)...")
    breakdown = trainer.train(training_queries)
    print(
        f"  processed {breakdown.pairs_processed} (query, answer) pairs, "
        f"converged={breakdown.converged}, prototypes K={model.prototype_count}"
    )
    print(
        f"  {100 * breakdown.query_execution_share:.1f}% of training time went to "
        "executing queries against the engine"
    )

    # ------------------------------------------------------------------ #
    # 3. Answer unseen queries without touching the data.
    # ------------------------------------------------------------------ #
    test_queries = generator.generate(200)

    start = time.perf_counter()
    predictions = [model.predict_mean(query) for query in test_queries]
    model_ms = 1000.0 * (time.perf_counter() - start) / len(test_queries)

    start = time.perf_counter()
    exact: list[float] = []
    kept: list[int] = []
    for index, query in enumerate(test_queries):
        try:
            exact.append(engine.execute_q1(query).mean)
            kept.append(index)
        except Exception:
            continue
    exact_ms = 1000.0 * (time.perf_counter() - start) / max(len(exact), 1)

    error = rmse(np.array(exact), np.array([predictions[i] for i in kept]))
    print("\nQ1 (mean-value) queries on 200 unseen queries:")
    print(f"  prediction RMSE            : {error:.4f}  (outputs scaled to [0, 1])")
    print(f"  model latency per query    : {model_ms:.4f} ms  (no data access)")
    print(f"  exact latency per query    : {exact_ms:.4f} ms")
    print(f"  speedup                    : {exact_ms / max(model_ms, 1e-9):.0f}x")

    # A regression (Q2) query: the list of local linear models over a region.
    query = Query(center=np.array([0.5, 0.5]), radius=0.3)
    planes = model.regression_models(query)
    print(f"\nQ2 (regression) query over D(center=[0.5, 0.5], radius=0.3):")
    print(f"  {len(planes)} local linear models returned:")
    for plane in planes[:5]:
        slope = np.array2string(plane.slope, precision=3)
        print(
            f"    weight={plane.weight:.2f}  u ≈ {plane.intercept:+.3f} + {slope} · x"
        )
    if len(planes) > 5:
        print(f"    ... and {len(planes) - 5} more")


if __name__ == "__main__":
    main()
