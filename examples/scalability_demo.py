"""Scalability demo: query latency vs dataset size (the Figure-12 story).

The central systems claim of the paper is that, once trained, the model
answers Q1 and Q2 queries in sub-millisecond time *independently of the
dataset size*, while exact execution (selection + aggregation / regression
over the DBMS) grows with the data and is orders of magnitude slower.

This example sweeps the dataset size, trains a model per size, and prints
the per-query latency of:

* the trained model (Q1 prediction and Q2 local-model retrieval),
* exact Q1/Q2 execution over the engine,
* PLR fitted on the selected subspace (the paper's strongest baseline).

Run with::

    python examples/scalability_demo.py
"""

from __future__ import annotations

from repro.eval.experiments import run_scalability_experiment
from repro.eval.reporting import format_series_table


def main() -> None:
    sizes = (10_000, 40_000, 160_000)
    print("Measuring per-query latency for dataset sizes:", sizes)
    print("(each size builds a fresh dataset, trains a model, then times queries)\n")
    result = run_scalability_experiment(
        dataset_sizes=sizes,
        dimension=2,
        training_queries=800,
        measured_queries=30,
        seed=5,
    )

    print(format_series_table(
        "rows",
        result["dataset_sizes"],
        {
            "LLM (ms)": result["q1_latency_ms"]["llm"],
            "exact REG (ms)": result["q1_latency_ms"]["exact_reg"],
        },
        title="Q1 (mean value) per-query latency",
        precision=4,
    ))
    print()
    print(format_series_table(
        "rows",
        result["dataset_sizes"],
        {
            "LLM (ms)": result["q2_latency_ms"]["llm"],
            "exact REG (ms)": result["q2_latency_ms"]["exact_reg"],
            "PLR (ms)": result["q2_latency_ms"]["plr"],
        },
        title="Q2 (regression) per-query latency",
        precision=4,
    ))

    llm = result["q1_latency_ms"]["llm"]
    exact = result["q1_latency_ms"]["exact_reg"]
    print(
        f"\nAt {sizes[-1]:,} rows the model answers Q1 queries "
        f"{exact[-1] / max(llm[-1], 1e-9):.0f}x faster than exact execution, and its "
        "latency curve stays flat as the data grows — the model never touches the data."
    )


if __name__ == "__main__":
    main()
