"""Seismic analytics scenario: declarative Q1/Q2 queries over spatial data.

The paper's introduction motivates the query types with seismologists
exploring P-wave speeds over a geographic region: Q1 returns the mean
signal within a disc around a point of interest, Q2 returns the local
linear dependency of the signal on longitude/latitude.  This example
reproduces that workflow end to end using the library's SQLite-backed
store and the declarative SQL front end:

* the "seismic" table holds (longitude, latitude, p_wave_speed) tuples,
* analysts issue ``SELECT AVG(u) ... WITHIN r OF (lon, lat)`` and
  ``SELECT REGRESSION(u) ...`` statements,
* during the training phase the statements are executed exactly; once the
  model converges the same statements are answered by the model without
  touching the table.

Run with::

    python examples/seismic_analytics.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AnalyticsSession,
    ExactQueryEngine,
    LLMModel,
    ModelConfig,
    QueryWorkloadGenerator,
    RadiusDistribution,
    SQLiteDataStore,
    StreamingTrainer,
    TrainingConfig,
    WorkloadSpec,
)
from repro.data.synthetic import SyntheticDataset


def build_seismic_dataset(size: int = 30_000, seed: int = 3) -> SyntheticDataset:
    """Synthetic P-wave speed field over a unit-square region.

    The field mixes a regional trend, a ridge along a fault line and local
    basins — visibly different local linear behaviour in different areas,
    which is exactly the situation where a single regression over a broad
    region misleads the analyst.
    """
    rng = np.random.default_rng(seed)
    longitude = rng.uniform(0, 1, size)
    latitude = rng.uniform(0, 1, size)
    fault = np.exp(-((longitude - latitude) ** 2) / 0.02)
    basin = 0.5 * np.exp(-((longitude - 0.7) ** 2 + (latitude - 0.3) ** 2) / 0.05)
    trend = 0.8 * longitude - 0.3 * latitude
    speed = 5.0 + trend + 1.5 * fault - basin + rng.normal(0, 0.05, size)
    inputs = np.column_stack([longitude, latitude])
    return SyntheticDataset(
        inputs=inputs,
        outputs=speed,
        name="seismic",
        domain=(0.0, 1.0),
        metadata={"output": "p_wave_speed_km_s"},
    )


def main() -> None:
    # Load the measurements into the SQLite store.
    dataset = build_seismic_dataset()
    store = SQLiteDataStore(":memory:")
    store.load_dataset(dataset, table_name="seismic")
    engine = ExactQueryEngine.from_store(store, "seismic")
    print(f"Loaded {dataset.size} seismic measurements into table 'seismic'.")

    # Training phase: the analyst community issues exploration queries.
    spec = WorkloadSpec(
        dimension=2, radius=RadiusDistribution(mean=0.08, std=0.02)
    )
    workload = QueryWorkloadGenerator(spec, seed=11).generate(2_500)
    model = LLMModel(
        dimension=2,
        config=ModelConfig(quantization_coefficient=0.05),
        training=TrainingConfig(convergence_threshold=0.002),
    )
    breakdown = StreamingTrainer(model, engine).train(workload)
    print(
        f"Model trained from {breakdown.pairs_processed} executed queries "
        f"(K = {model.prototype_count} local linear models)."
    )

    # Prediction phase: the same declarative statements, answered two ways.
    session = AnalyticsSession()
    session.register_engine("seismic", engine)
    session.register_model("seismic", model)

    statements = [
        "SELECT AVG(u) FROM seismic WITHIN 0.08 OF (0.45, 0.47)",
        "SELECT AVG(u) FROM seismic WITHIN 0.08 OF (0.72, 0.28)",
        "SELECT COUNT(*) FROM seismic WITHIN 0.08 OF (0.45, 0.47)",
    ]
    print("\nMean-value (Q1) queries — exact vs model prediction:")
    for sql in statements:
        exact = session.execute(sql)
        if "COUNT" in sql:
            print(f"  {sql}\n    exact count = {exact}")
            continue
        predicted = session.execute(sql, mode="approximate")
        print(f"  {sql}\n    exact = {exact:.4f}   predicted = {predicted:.4f}")

    # Regression (Q2) over a broad region of interest: the model returns a
    # *list* of local linear models instead of one misleading global line.
    region_sql = "SELECT REGRESSION(u) FROM seismic WITHIN 0.35 OF (0.5, 0.5)"
    global_fit = session.execute(region_sql)
    local_fits = session.execute(region_sql, mode="approximate")
    intercept, slope = global_fit[0]
    print("\nRegression (Q2) over the central region D([0.5, 0.5], 0.35):")
    print(
        f"  single exact OLS plane : speed ≈ {intercept:.3f} "
        f"+ {slope[0]:+.3f}·lon {slope[1]:+.3f}·lat"
    )
    print(f"  model returns {len(local_fits)} local planes, e.g.:")
    for intercept, slope in local_fits[:4]:
        print(
            f"    speed ≈ {intercept:.3f} + {slope[0]:+.3f}·lon {slope[1]:+.3f}·lat"
        )
    print(
        "\nDifferent local slopes across the region reveal the fault ridge and "
        "basin that the single global plane averages away."
    )
    store.close()


if __name__ == "__main__":
    main()
