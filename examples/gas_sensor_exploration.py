"""Gas-sensor exploration: goodness of fit of local models vs baselines.

The paper's real dataset R1 is a gas-sensor-array calibration dataset whose
features depend on each other in strongly non-linear ways, so a single
linear regression over an analyst's region of interest explains little of
the variance.  This example uses the library's R1 surrogate to reproduce
the workflow of Section VI-C:

1. train the query-driven model from mean-value queries,
2. issue regression (Q2) queries over broad analyst regions,
3. compare the goodness of fit (FVU / R²) of the model's local linear
   planes against REG (exact OLS over the region) and PLR (MARS-style
   piecewise regression, fitted with full data access).

Run with::

    python examples/gas_sensor_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro import Query, rmse
from repro.eval.experiments import ANALYST_RADIUS_SCALE, build_context
from repro.eval.reporting import format_table
from repro.metrics.evaluation import (
    evaluate_q1_accuracy,
    evaluate_q2_goodness_of_fit,
    evaluate_value_prediction,
)


def main() -> None:
    print("Building the gas-sensor surrogate (R1) context: 20,000 rows, d = 2...")
    context = build_context(
        "R1",
        dimension=2,
        dataset_size=20_000,
        training_queries=2_000,
        testing_queries=200,
        seed=13,
    )
    model, report = context.train_model(coefficient=0.05)
    print(
        f"Trained on {report.pairs_processed} executed queries, "
        f"K = {model.prototype_count} local linear models."
    )

    # Q1 accuracy on unseen queries.
    accuracy = evaluate_q1_accuracy(model, context.engine, context.testing.queries)
    answers = context.testing.answers
    baseline = rmse(answers, np.full_like(answers, float(answers.mean())))
    print(f"\nQ1 prediction RMSE over {accuracy.evaluated_queries} unseen queries: "
          f"{accuracy.rmse:.4f} (predicting the global mean would give {baseline:.4f})")

    # Q2 goodness of fit over broad analyst regions.
    analyst_queries = [
        Query(center=q.center, radius=q.radius * ANALYST_RADIUS_SCALE)
        for q in context.testing.queries[:40]
    ]
    fit = evaluate_q2_goodness_of_fit(
        model, context.engine, analyst_queries, plr_max_basis_functions=12
    )
    rows = [
        ["LLM (this work, no data access)", fit.llm_fvu, fit.llm_cod],
        ["REG (exact OLS over the region)", fit.reg_fvu, fit.reg_cod],
        ["PLR (MARS with data access)", fit.plr_fvu, fit.plr_cod],
    ]
    print("\nGoodness of fit over broad analyst regions "
          f"({fit.evaluated_queries} regions, radius ≈ {ANALYST_RADIUS_SCALE}× the exploration radius):")
    print(format_table(["method", "FVU (lower is better)", "R²"], rows, precision=3))
    print(f"Average number of local models per Q2 answer: {fit.mean_local_models:.1f}")

    # Data-value prediction (metric A2).
    value_report = evaluate_value_prediction(
        model, context.engine, context.testing.queries[:40], seed=13
    )
    print("\nData-value prediction RMSE (predicting u = g(x) at held-out points):")
    print(format_table(
        ["method", "RMSE"],
        [["LLM", value_report["llm"]], ["REG", value_report["reg"]], ["PLR", value_report["plr"]]],
        precision=4,
    ))
    print(
        "\nThe local linear models explain the analyst regions far better than a "
        "single regression plane, approaching PLR which needs full data access."
    )


if __name__ == "__main__":
    main()
