"""Crash-recovery benchmark: checkpoint, kill, restart, resume drift.

The durability layer (`repro.dbms.durability`) promises that a serving
deployment can be killed at any moment and rebuilt from its newest valid
checkpoint plus journal replay — with the registry, the recorded query
stream, the serving statistics and the drift-detection window all intact.
This benchmark measures that promise and gates on it:

* **checkpoint cost** — wall-clock and on-disk size of a full-state
  checkpoint of a loaded deployment,
* **recovery time** — wall-clock from ``RecoveryManager.recover()`` to a
  serving-ready restored stack (engine rebuilt from the store binding,
  model loaded, journal replayed), gated against a hard ceiling,
* **fidelity** — the restored service must report the journaled model
  version, a non-empty restored query log and the pre-crash statement
  counters,
* **drift resumption** — the crash happens mid-drift: before it, the
  shifted traffic fills the window to just *below* the retrain threshold;
  after restart, less than a threshold's worth of fresh traffic must
  trigger the retrain.  That retrain only fires if the restored window
  carried the pre-crash evidence across the process boundary.

Results are emitted through the ``repro.bench`` harness: a
:class:`~repro.bench.RunRecord` appended to the JSONL results store plus
one ``BENCH_recovery.json`` artifact.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_recovery.py [--smoke]
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench import BenchmarkSpec
from repro.bench.cli import pytest_entry, script_main
from repro.config import ModelConfig, TrainingConfig
from repro.core.model import LLMModel
from repro.data.synthetic import SyntheticDataset
from repro.dbms.durability import RecoveryManager, ServiceCheckpointer
from repro.dbms.lifecycle import DriftPolicy, ModelManager, ModelVersionStore
from repro.dbms.serving import AnalyticsService
from repro.dbms.storage import SQLiteDataStore
from repro.queries.stream import LabelledWorkload
from repro.queries.workload import (
    QueryWorkloadGenerator,
    RadiusDistribution,
    WorkloadSpec,
)

TABLE = "sensors"

#: Hard ceiling on the recovery wall-clock (seconds).  Recovery is a cold
#: path, but a restart that takes longer than this on a benchmark-sized
#: deployment would be an availability bug, not a tuning matter.
RECOVERY_SECONDS_GATE = 10.0


def _workload(low: float, high: float, count: int, seed: int):
    spec = WorkloadSpec(
        dimension=2,
        center_low=low,
        center_high=high,
        radius=RadiusDistribution(mean=0.12, std=0.02),
    )
    return QueryWorkloadGenerator(spec, seed=seed).generate(count)


def _statement(query) -> str:
    center = ", ".join(repr(float(value)) for value in query.center)
    return (
        f"SELECT AVG(u) FROM {TABLE} WITHIN {float(query.radius)!r}"
        f" OF ({center})"
    )


def _train_model(engine, queries) -> LLMModel:
    workload = LabelledWorkload.from_queries(queries, engine.mean_value)
    model = LLMModel(
        dimension=2,
        config=ModelConfig(quantization_coefficient=0.1),
        training=TrainingConfig(convergence_threshold=1e-4),
    )
    model.fit(workload)
    return model


def _serve(service, queries) -> None:
    service.execute_script([_statement(query) for query in queries])


def run_recovery_benchmark(
    dataset_size: int = 4_000,
    training_queries: int = 200,
    pre_crash_statements: int = 80,
    post_restart_statements: int = 50,
    *,
    seed: int = 42,
) -> dict:
    """Checkpoint a drifting deployment, 'crash' it, time the restart."""
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(0, 1, size=(dataset_size, 2))
    outputs = 1.0 + inputs[:, 0] + 2.0 * inputs[:, 1]
    dataset = SyntheticDataset(
        inputs=inputs, outputs=outputs, name=TABLE, domain=(0.0, 1.0)
    )
    # drift detection must straddle the crash: the pre-crash window alone
    # and the post-restart traffic alone are each below the threshold,
    # only their union crosses it
    policy = DriftPolicy(
        fallback_rate_threshold=0.3,
        min_window_statements=pre_crash_statements + post_restart_statements // 2,
        window_buckets=8,
        cooldown_seconds=0.0,
        min_retrain_queries=16,
    )
    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as tmp:
        base = Path(tmp)
        with SQLiteDataStore(base / "data.db") as store:
            store.load_dataset(dataset, TABLE)
            service = AnalyticsService(query_log_size=512)
            engine = service.register_table_from_store(store, TABLE)
            # train only on the left half of the domain
            model = _train_model(
                engine, _workload(0.0, 0.45, training_queries, seed=1)
            )
            version_store = ModelVersionStore(base / "versions")
            v1 = version_store.save(TABLE, model)
            service.swap_model(TABLE, model, version=v1)
            manager = ModelManager(
                service, policy=policy, version_store=version_store
            )
            manager.manage(TABLE, store=store, store_table=TABLE)

            checkpointer = ServiceCheckpointer(
                service,
                base / "ckpt",
                manager=manager,
                version_store=version_store,
            )
            # shifted traffic the model never saw: heavy fallbacks, but
            # the window stays below the retrain threshold pre-crash
            _serve(service, _workload(0.55, 1.0, pre_crash_statements, seed=2))
            pre_tick_status = manager.tick()[TABLE]
            pre_window = manager.window_statements(TABLE)
            pre_stats = service.statistics_for(TABLE)
            pre_statements = pre_stats.statements_executed
            pre_log = len(service.recent_queries(TABLE))

            start = time.perf_counter()
            checkpoint_path = checkpointer.checkpoint()
            checkpoint_seconds = time.perf_counter() - start
            checkpoint_bytes = checkpoint_path.stat().st_size

            # one more swap after the checkpoint: recovery must replay it
            # from the journal, not the manifest
            v2 = version_store.save(TABLE, model)
            service.swap_model(TABLE, model, version=v2)

        # ---- the crash: the store handle and every live object are gone ----
        start = time.perf_counter()
        recovered = RecoveryManager(base / "ckpt").recover()
        restored = recovered.service
        new_manager = ModelManager(
            restored, policy=policy, version_store=version_store
        )
        recovered.attach_manager(new_manager)
        recovery_seconds = time.perf_counter() - start

        try:
            restored_stats = restored.statistics_for(TABLE)
            fidelity = {
                "model_version_journaled": restored.model_version_for(TABLE)
                == v2,
                "query_log_restored": len(restored.recent_queries(TABLE))
                == pre_log
                > 0,
                "statements_restored": restored_stats.statements_executed
                == pre_statements,
                "window_restored": new_manager.window_statements(TABLE)
                == pre_window
                > 0,
            }
            # serve the restored stack: below-threshold fresh traffic must
            # combine with the restored window to trigger the retrain
            _serve(
                restored,
                _workload(0.55, 1.0, post_restart_statements, seed=3),
            )
            post_tick_status = new_manager.tick()[TABLE]
            retrained = post_tick_status == "retrained"
            final_version = restored.model_version_for(TABLE)
            serves = bool(
                np.isfinite(
                    restored.execute(
                        f"SELECT AVG(u) FROM {TABLE} WITHIN 0.2 OF (0.5, 0.5)"
                    )
                )
            )
        finally:
            for opened in recovered.stores.values():
                opened.close()

        return {
            "setup": {
                "dataset_size": dataset_size,
                "training_queries": training_queries,
                "pre_crash_statements": pre_crash_statements,
                "post_restart_statements": post_restart_statements,
                "min_window_statements": policy.min_window_statements,
            },
            "checkpoint": {
                "seconds": checkpoint_seconds,
                "bytes": checkpoint_bytes,
                "path": checkpoint_path.name,
            },
            "recovery": {
                "seconds": recovery_seconds,
                "checkpoint_version": recovered.checkpoint_version,
                "journal_entries_applied": recovered.journal_entries_applied,
                "journal_entries_dropped": recovered.journal_entries_dropped,
                "skipped_checkpoints": len(recovered.skipped_checkpoints),
            },
            "fidelity": fidelity,
            "pre_crash": {
                "tick_status": pre_tick_status,
                "window_statements": pre_window,
                "statements_executed": pre_statements,
                "query_log": pre_log,
            },
            "post_restart": {
                "tick_status": post_tick_status,
                "retrained": retrained,
                "window_statements": new_manager.window_statements(TABLE),
                "final_model_version": str(final_version),
                "serves": serves,
            },
            "recovery_seconds_gate": RECOVERY_SECONDS_GATE,
        }


def _check(result: dict) -> list[str]:
    """Return the list of failed recovery gates (empty when green)."""
    failures: list[str] = []
    recovery = result["recovery"]
    if recovery["seconds"] > RECOVERY_SECONDS_GATE:
        failures.append(
            f"recovery took {recovery['seconds']:.2f}s, above the"
            f" {RECOVERY_SECONDS_GATE:.1f}s ceiling"
        )
    if recovery["skipped_checkpoints"]:
        failures.append(
            f"{recovery['skipped_checkpoints']} checkpoint(s) were skipped"
            " as corrupt on an uncorrupted run"
        )
    for name, ok in result["fidelity"].items():
        if not ok:
            failures.append(f"fidelity check failed: {name}")
    if result["pre_crash"]["tick_status"] == "retrained":
        failures.append(
            "the pre-crash tick already retrained — the scenario no longer"
            " proves the window survived the restart"
        )
    post = result["post_restart"]
    if not post["retrained"]:
        failures.append(
            "post-restart drift detection did not resume from the restored"
            f" window (tick status: {post['tick_status']})"
        )
    if not post["serves"]:
        failures.append("the restored service failed to answer a statement")
    return failures


def _extract(result: dict) -> dict:
    return {
        "recovery_seconds": result["recovery"]["seconds"],
        "checkpoint_seconds": result["checkpoint"]["seconds"],
        "checkpoint_bytes": float(result["checkpoint"]["bytes"]),
        "journal_entries_applied": float(
            result["recovery"]["journal_entries_applied"]
        ),
        "restored_window_statements": float(
            result["pre_crash"]["window_statements"]
        ),
        "retrained_after_restart": float(result["post_restart"]["retrained"]),
        "fidelity_failures": float(
            sum(not ok for ok in result["fidelity"].values())
        ),
    }


def _format(result: dict) -> str:
    fidelity = ", ".join(
        f"{name}={'ok' if ok else 'FAIL'}"
        for name, ok in result["fidelity"].items()
    )
    return "\n".join(
        [
            "Crash recovery (checkpoint -> kill -> restart -> resume drift)",
            f"  deployment:           {result['setup']['dataset_size']} rows,"
            f" {result['setup']['pre_crash_statements']} pre-crash statements",
            f"  checkpoint:           {result['checkpoint']['seconds'] * 1e3:.1f} ms,"
            f" {result['checkpoint']['bytes'] / 1024:.1f} KiB"
            f" ({result['checkpoint']['path']})",
            f"  recovery:             {result['recovery']['seconds'] * 1e3:.1f} ms"
            f" (gate {result['recovery_seconds_gate']:.1f} s), journal"
            f" entries applied {result['recovery']['journal_entries_applied']}",
            f"  fidelity:             {fidelity}",
            f"  drift window:         {result['pre_crash']['window_statements']}"
            f" restored + fresh traffic ->"
            f" {result['post_restart']['window_statements']}",
            f"  post-restart tick:    {result['post_restart']['tick_status']}"
            f" (model {result['post_restart']['final_model_version']})",
        ]
    )


SPEC = BenchmarkSpec(
    name="recovery",
    title="Crash recovery (checkpoint / restart / drift resumption)",
    artifact="recovery",
    run=run_recovery_benchmark,
    # Wall-clock metrics gate only against the hard ceiling in _check —
    # the trajectory directions below additionally catch creep between
    # PRs on the same environment.
    metrics={
        "recovery_seconds": "lower",
        "checkpoint_seconds": "lower",
        "checkpoint_bytes": "info",
        "journal_entries_applied": "info",
        "restored_window_statements": "info",
        "retrained_after_restart": "info",
        "fidelity_failures": "info",
    },
    extract=_extract,
    check=lambda result, params: _check(result),
    format=_format,
    default_params={
        "dataset_size": 4_000,
        "training_queries": 200,
        "pre_crash_statements": 80,
        "post_restart_statements": 50,
        "seed": 42,
    },
    smoke_params={
        "dataset_size": 2_000,
        "training_queries": 120,
        "pre_crash_statements": 50,
        "post_restart_statements": 30,
    },
)


def test_recovery_benchmark(results_dir, record_table):
    """Benchmark-suite entry point: asserts the recovery gates."""
    pytest_entry(SPEC, results_dir, record_table)


if __name__ == "__main__":
    raise SystemExit(script_main(SPEC))
