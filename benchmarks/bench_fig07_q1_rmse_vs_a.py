"""Figure 7: Q1 prediction RMSE vs quantization coefficient ``a``.

The paper reports that the RMSE of the predicted mean value grows as the
quantization becomes coarser (larger ``a`` means fewer prototypes), for
d in {2, 3, 5} over both datasets.  This replication sweeps the
coefficient grid for both R1 and R2 through
:func:`~repro.eval.experiments.run_q1_accuracy_vs_coefficient` and gates
the figure's shape: monotone degradation from fine to coarse and a small
absolute error at the fine end.

Results are emitted through the ``repro.bench`` harness: a
:class:`~repro.bench.RunRecord` appended to the JSONL results store plus
one ``BENCH_fig07.json`` artifact.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_fig07_q1_rmse_vs_a.py [--smoke]
"""

from __future__ import annotations

import numpy as np

from repro.bench import BenchmarkSpec
from repro.bench.cli import pytest_entry, script_main
from repro.eval.experiments import run_q1_accuracy_vs_coefficient
from repro.eval.reporting import format_series_table

COEFFICIENTS = (0.05, 0.1, 0.25, 0.5, 0.9)

#: Fine-end accuracy gate on the [0, 1] output range, by training budget:
#: the paper-sized run must land under the tight bound, the smoke run
#: (far fewer training queries) under the loose one.
FINE_RMSE_GATE_FULL = 0.12
FINE_RMSE_GATE_SMOKE = 0.30


def run_fig07(
    datasets: tuple = ("R1", "R2"),
    dimensions: tuple = (2, 3, 5),
    coefficients: tuple = COEFFICIENTS,
    dataset_size: int = 12_000,
    training_queries: int = 1_500,
    testing_queries: int = 200,
    *,
    seed: int = 7,
) -> dict:
    """Sweep the coefficient grid per dataset; keep the raw RMSE series."""
    sweeps = {}
    for dataset in datasets:
        sweeps[dataset] = run_q1_accuracy_vs_coefficient(
            dataset_name=dataset,
            dimensions=tuple(dimensions),
            coefficients=tuple(coefficients),
            dataset_size=dataset_size,
            training_queries=training_queries,
            testing_queries=testing_queries,
            seed=seed,
        )
    return {
        "setup": {
            "datasets": list(datasets),
            "dimensions": list(dimensions),
            "coefficients": list(coefficients),
            "dataset_size": dataset_size,
            "training_queries": training_queries,
            "testing_queries": testing_queries,
        },
        "sweeps": sweeps,
    }


def _check(result: dict, params: dict) -> list[str]:
    """Gate the figure's shape; return failed gates (empty when green)."""
    gate = (
        FINE_RMSE_GATE_FULL
        if params.get("training_queries", 1_500) >= 1_000
        else FINE_RMSE_GATE_SMOKE
    )
    failures: list[str] = []
    for dataset, sweep in result["sweeps"].items():
        for dimension, rmses in sweep["rmse"].items():
            values = np.asarray(rmses, dtype=float)
            label = f"{dataset} d={dimension}"
            if not np.all(np.isfinite(values)):
                failures.append(f"{label}: non-finite RMSE in the sweep")
                continue
            if len(values) > 1 and not values[0] < values[-1]:
                failures.append(
                    f"{label}: RMSE did not degrade from the finest"
                    f" ({values[0]:.4f}) to the coarsest ({values[-1]:.4f})"
                    " quantization"
                )
            if values[0] >= gate:
                failures.append(
                    f"{label}: fine-end RMSE {values[0]:.4f} above the"
                    f" {gate:.2f} gate"
                )
    return failures


def _extract(result: dict) -> dict:
    metrics: dict[str, float] = {}
    for dataset, sweep in result["sweeps"].items():
        for dimension, rmses in sweep["rmse"].items():
            key = f"{dataset.lower()}_d{dimension}"
            metrics[f"{key}_rmse_fine"] = float(rmses[0])
            metrics[f"{key}_rmse_coarse"] = float(rmses[-1])
    return metrics


def _format(result: dict) -> str:
    blocks = []
    for dataset, sweep in result["sweeps"].items():
        blocks.append(
            format_series_table(
                "a",
                list(sweep["coefficients"]),
                sweep["rmse"],
                title=f"Figure 7 — Q1 RMSE vs coefficient a ({dataset})",
            )
        )
    return "\n\n".join(blocks)


def _metrics() -> dict:
    # Fine-end accuracy is the figure's headline and gates the trajectory;
    # the coarse end is descriptive (it is *expected* to be bad).
    metrics: dict[str, str] = {}
    for dataset in ("r1", "r2"):
        for dimension in (2, 3, 5):
            metrics[f"{dataset}_d{dimension}_rmse_fine"] = "lower"
            metrics[f"{dataset}_d{dimension}_rmse_coarse"] = "info"
    return metrics


SPEC = BenchmarkSpec(
    name="fig07",
    title="Figure 7 — Q1 RMSE vs quantization coefficient",
    artifact="fig07",
    run=run_fig07,
    metrics=_metrics(),
    extract=_extract,
    check=_check,
    format=_format,
    default_params={
        "datasets": ("R1", "R2"),
        "dimensions": (2, 3, 5),
        "coefficients": COEFFICIENTS,
        "dataset_size": 12_000,
        "training_queries": 1_500,
        "testing_queries": 200,
        "seed": 7,
    },
    smoke_params={
        "datasets": ("R2",),
        "dimensions": (2,),
        "coefficients": (0.05, 0.25, 0.9),
        "dataset_size": 4_000,
        "training_queries": 400,
        "testing_queries": 60,
    },
)


def test_fig07_benchmark(results_dir, record_table):
    """Benchmark-suite entry point: asserts the figure-shape gates."""
    pytest_entry(SPEC, results_dir, record_table)


if __name__ == "__main__":
    raise SystemExit(script_main(SPEC))
