"""Figure 7: Q1 prediction RMSE vs quantization coefficient ``a``.

The paper reports that the RMSE of the predicted mean value grows as the
quantization becomes coarser (larger ``a`` means fewer prototypes), for
d in {2, 3, 5} over both datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import run_q1_accuracy_vs_coefficient
from repro.eval.reporting import format_series_table

COEFFICIENTS = (0.05, 0.1, 0.25, 0.5, 0.9)


@pytest.mark.parametrize("dataset", ["R1", "R2"])
def test_fig07_q1_rmse_vs_coefficient(dataset, benchmark, record_table):
    result = benchmark.pedantic(
        run_q1_accuracy_vs_coefficient,
        kwargs={
            "dataset_name": dataset,
            "dimensions": (2, 3, 5),
            "coefficients": COEFFICIENTS,
            "dataset_size": 12_000,
            "training_queries": 1_500,
            "testing_queries": 200,
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    record_table(
        f"fig07_q1_rmse_vs_a_{dataset}",
        format_series_table(
            "a",
            list(result["coefficients"]),
            result["rmse"],
            title=f"Figure 7 — Q1 RMSE vs coefficient a ({dataset})",
        ),
    )

    for dimension, rmses in result["rmse"].items():
        values = np.asarray(rmses)
        assert np.all(np.isfinite(values))
        # Shape: the finest quantization is more accurate than the coarsest.
        assert values[0] < values[-1]
        # Accuracy at the fine end is a small fraction of the [0, 1] range.
        assert values[0] < 0.12
