"""Ablation: overlap-weighted neighbourhood vs single-nearest-prototype.

Algorithm 2 predicts from the overlap-weighted set W(q) of prototypes.
The obvious simpler alternative is to always use the single closest
prototype's LLM.  This ablation compares the two prediction rules with the
same trained parameters.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments import build_context
from repro.eval.reporting import format_table
from repro.metrics.regression import rmse


def _nearest_prototype_prediction(model, query) -> float:
    """Predict with the closest prototype only (the ablated rule)."""
    vector = query.to_vector()
    maps = model.local_maps
    distances = [llm.distance_to(vector) for llm in maps]
    return maps[int(np.argmin(distances))].evaluate(vector)


def _run_ablation() -> dict:
    context = build_context(
        "R1",
        dimension=2,
        dataset_size=12_000,
        training_queries=1_500,
        testing_queries=200,
        seed=7,
    )
    model, _ = context.train_model(coefficient=0.05)

    actual, weighted, nearest = [], [], []
    for query in context.testing.queries:
        try:
            truth = context.engine.execute_q1(query).mean
        except Exception:
            continue
        actual.append(truth)
        weighted.append(model.predict_mean(query))
        nearest.append(_nearest_prototype_prediction(model, query))
    actual_arr = np.asarray(actual)
    return {
        "queries": len(actual),
        "weighted_rmse": rmse(actual_arr, np.asarray(weighted)),
        "nearest_rmse": rmse(actual_arr, np.asarray(nearest)),
        "prototypes": model.prototype_count,
    }


def test_ablation_neighborhood_aggregation(benchmark, record_table):
    result = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    record_table(
        "ablation_neighborhood",
        format_table(
            ["prediction rule", "Q1 RMSE"],
            [
                ["overlap-weighted W(q) (Algorithm 2)", result["weighted_rmse"]],
                ["single nearest prototype", result["nearest_rmse"]],
            ],
            title=(
                "Ablation — neighbourhood aggregation "
                f"(R1, d=2, K={result['prototypes']}, {result['queries']} queries)"
            ),
        ),
    )
    # The weighted neighbourhood should match or beat the 1-NN rule.
    assert result["weighted_rmse"] <= result["nearest_rmse"] * 1.05 + 1e-3
