"""Ablation: vigilance-driven growing AVQ vs a fixed-K online quantizer.

The paper's quantizer grows prototypes on demand (governed by the vigilance
``rho``) instead of fixing K in advance.  This ablation trains two models on
the same workload — the growing quantizer and a fixed-K variant seeded with
the first K queries — and compares Q1 accuracy for matched prototype
budgets.
"""

from __future__ import annotations

import numpy as np

from repro.core.avq import FixedKQuantizer
from repro.core.model import LLMModel
from repro.core.sgd import apply_winner_update
from repro.core.learning_rates import HyperbolicRate
from repro.config import ModelConfig, TrainingConfig
from repro.eval.experiments import build_context
from repro.eval.reporting import format_table
from repro.metrics.evaluation import evaluate_q1_accuracy
from repro.metrics.regression import rmse


class _FixedKModel:
    """Minimal fixed-K counterpart of LLMModel used only by this ablation."""

    def __init__(self, k: int):
        self._quantizer = FixedKQuantizer(k)
        self._schedule = HyperbolicRate()

    def fit(self, pairs) -> None:
        for pair in pairs:
            query, answer = pair.query, pair.answer
            vector = query.to_vector()
            index, grew, _ = self._quantizer.observe(vector, answer=answer)
            if not grew:
                winner = self._quantizer.maps[index]
                apply_winner_update(
                    winner, vector, answer, self._schedule(winner.updates)
                )

    def predict_mean(self, query) -> float:
        from repro.core.prediction import NeighborhoodPredictor

        return NeighborhoodPredictor(self._quantizer.maps).predict_mean(query)


def _run_ablation() -> dict:
    context = build_context(
        "R1",
        dimension=2,
        dataset_size=12_000,
        training_queries=1_500,
        testing_queries=200,
        seed=7,
    )
    growing_model, _ = context.train_model(coefficient=0.05)
    k = growing_model.prototype_count

    fixed_model = _FixedKModel(k)
    fixed_model.fit(context.training.pairs)

    growing_report = evaluate_q1_accuracy(
        growing_model, context.engine, context.testing.queries
    )
    actual, predicted = [], []
    for query in context.testing.queries:
        try:
            truth = context.engine.execute_q1(query).mean
        except Exception:
            continue
        actual.append(truth)
        predicted.append(fixed_model.predict_mean(query))
    fixed_rmse = rmse(np.asarray(actual), np.asarray(predicted))
    return {
        "k": k,
        "growing_rmse": growing_report.rmse,
        "fixed_rmse": fixed_rmse,
    }


def test_ablation_growing_vs_fixed_k(benchmark, record_table):
    result = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    record_table(
        "ablation_quantizer",
        format_table(
            ["quantizer", "prototypes K", "Q1 RMSE"],
            [
                ["growing AVQ (paper)", result["k"], result["growing_rmse"]],
                ["fixed-K (first-K seeding)", result["k"], result["fixed_rmse"]],
            ],
            title="Ablation — growing AVQ vs fixed-K quantizer (R1, d=2)",
        ),
    )
    assert np.isfinite(result["growing_rmse"])
    assert np.isfinite(result["fixed_rmse"])
    # The growing quantizer should not be substantially worse than the
    # fixed-K variant at the same prototype budget.
    assert result["growing_rmse"] <= result["fixed_rmse"] * 1.5 + 0.02
