"""Figure 5: local linear approximations of a 1-D non-linear function.

The paper's Figure 5 shows ~6 LLMs tracking a non-linear 1-D data function
far better than a single global regression line (REG) and close to PLR.
The benchmark regenerates the FVU of each method over the broad subspace
``D(0.5, 0.5)`` and asserts the ordering the figure shows:
``PLR <= LLM < REG``.
"""

from __future__ import annotations

from repro.eval.experiments import run_local_approximation_example
from repro.eval.reporting import format_table


def test_fig05_local_linear_models(benchmark, record_table):
    result = benchmark.pedantic(
        run_local_approximation_example,
        kwargs={"dataset_size": 4_000, "training_queries": 1_200, "seed": 11},
        rounds=1,
        iterations=1,
    )
    rows = [
        ["LLM", result["llm_fvu"], result["llm_local_models"]],
        ["REG", result["reg_fvu"], 1],
        ["PLR", result["plr_fvu"], result["plr_knots"]],
    ]
    record_table(
        "fig05_local_approximation",
        format_table(
            ["method", "FVU over D(0.5, 0.5)", "# local models"],
            rows,
            title="Figure 5 — 1-D non-linear function, local vs global approximation",
        ),
    )

    # Shape from the paper: a handful of local models, LLM much better than
    # the single global line and in the same regime as PLR.
    assert result["prototype_count"] >= 4
    assert result["llm_fvu"] < result["reg_fvu"]
    assert result["plr_fvu"] < result["reg_fvu"]
    assert result["llm_fvu"] < 1.0
