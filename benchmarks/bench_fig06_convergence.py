"""Figure 6: termination criterion vs number of training pairs.

The paper plots ``Gamma = max(Gamma_J, Gamma_H)`` against the number of
processed training pairs for both datasets and d in {2, 5}: the criterion
starts high (every new prototype keeps it up), decays as the quantization
stabilises, and crosses the threshold after a few thousand pairs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import run_convergence_experiment
from repro.eval.reporting import format_series_table


@pytest.mark.parametrize("dataset", ["R1", "R2"])
def test_fig06_convergence(dataset, benchmark, record_table):
    result = benchmark.pedantic(
        run_convergence_experiment,
        kwargs={
            "dataset_name": dataset,
            "dimensions": (2, 5),
            "dataset_size": 12_000,
            "training_queries": 2_000,
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )

    lines = [f"Figure 6 — termination criterion vs training pairs ({dataset})"]
    for dimension, data in result["by_dimension"].items():
        trajectory = np.asarray(data["criterion_trajectory"])
        # Downsample the trajectory for the recorded table.
        checkpoints = np.unique(
            np.clip(np.geomspace(1, trajectory.size, 12).astype(int) - 1, 0, None)
        )
        series = {"Gamma": [float(trajectory[i]) for i in checkpoints]}
        lines.append(
            format_series_table(
                "pair #", [int(i + 1) for i in checkpoints], series,
                title=f"d = {dimension}: converged={data['converged']} "
                      f"after {data['pairs_to_convergence']} pairs, "
                      f"K={data['prototype_count']}",
            )
        )
    record_table(f"fig06_convergence_{dataset}", "\n\n".join(lines))

    for dimension, data in result["by_dimension"].items():
        trajectory = np.asarray(data["criterion_trajectory"])
        assert trajectory.size > 50
        # Shape: the tail of the trajectory sits well below the early phase.
        early = trajectory[: max(trajectory.size // 10, 5)].mean()
        late = trajectory[-max(trajectory.size // 10, 5):].mean()
        assert late < early
