"""Figure 11: data-value prediction RMSE (metric A2) vs test-set size.

The paper compares the RMSE of predicting individual data values u = g(x)
for the LLM (no data access, Equation 14), REG and PLR (both fitted on the
selected subspace).  PLR is the most accurate, the LLM stays in the same
regime as REG and is robust to the size of the unseen workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import run_value_prediction_vs_test_size
from repro.eval.reporting import format_series_table

TEST_SIZES = (20, 40, 80)


@pytest.mark.parametrize("dataset", ["R1", "R2"])
def test_fig11_value_prediction(dataset, benchmark, record_table):
    result = benchmark.pedantic(
        run_value_prediction_vs_test_size,
        kwargs={
            "dataset_name": dataset,
            "dimensions": (2, 5),
            "test_sizes": TEST_SIZES,
            "dataset_size": 12_000,
            "training_queries": 1_500,
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )

    tables = []
    for dimension, series in result["by_dimension"].items():
        tables.append(
            format_series_table(
                "|V|",
                list(result["test_sizes"]),
                {
                    "LLM RMSE": series["llm_rmse"],
                    "REG RMSE": series["reg_rmse"],
                    "PLR RMSE": series["plr_rmse"],
                },
                title=f"Figure 11 — data-value RMSE vs |V| ({dataset}, {dimension})",
            )
        )
    record_table(f"fig11_value_prediction_{dataset}", "\n\n".join(tables))

    for dimension, series in result["by_dimension"].items():
        llm = np.asarray(series["llm_rmse"])
        reg = np.asarray(series["reg_rmse"])
        plr = np.asarray(series["plr_rmse"])
        assert np.all(np.isfinite(llm))
        # PLR (full data access, flexible fit) is the most accurate.
        assert np.all(plr <= reg + 1e-6)
        # The LLM, answering without data access, stays within a small
        # constant factor of the exact per-subspace REG fit and is robust
        # across test-set sizes.
        assert np.all(llm <= 5.0 * reg + 0.05)
        assert llm.max() - llm.min() < 0.1
