"""Concurrent serving front: coalesced multi-session throughput + cache.

The PR-5 serving benchmark measures one synchronous caller; this one
measures the concurrent front (`repro.dbms.concurrent`): N session threads
submit small scripts under a Zipfian table/query mix, the micro-batching
coalescer merges concurrent arrivals into bigger (cheaper per-statement)
batches, and the version-keyed answer cache short-circuits repeat traffic.

Headline requirements asserted here:

* sustained throughput at **4 concurrent sessions is >= 2x** the
  single-session throughput through the same front (coalescing pays for
  the concurrency machinery on the 2-core CI runner — the merged batches
  amortise the per-flush overhead, so the gate holds even without real
  hardware parallelism),
* the **cache-hit fast path is >= 5x** the uncached hybrid path on the
  same workload,
* coalesced *and* cached answers are **bit-equal** to the sequential
  `AnalyticsService` path (1e-12 budget; expected 0.0 — it is the same
  execution underneath),
* p50/p99 end-to-end latency is reported per session count from the
  front's fixed-bucket histogram.

Results are emitted through the ``repro.bench`` harness: a
:class:`~repro.bench.RunRecord` appended to the JSONL results store plus
one ``BENCH_concurrent.json`` artifact.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_concurrent.py [--smoke]
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.bench import BenchmarkSpec
from repro.bench.cli import pytest_entry, script_main
from repro.dbms.concurrent import ConcurrencyPolicy, ConcurrentAnalyticsService
from repro.dbms.serving import AnalyticsService
from repro.eval.experiments import build_context

#: Required speedup of 4 concurrent sessions over 1 through the front.
REQUIRED_CONCURRENT_SPEEDUP = 2.0

#: Required speedup of the cache-hit fast path over uncached hybrid serving.
REQUIRED_CACHE_SPEEDUP = 5.0

#: Agreement budget of front answers vs the sequential service.
DEVIATION_BUDGET = 1e-12

TABLES = ("R1", "R2")

#: Zipf exponent of the table/query popularity mix (dashboard-shaped
#: traffic: a few hot queries dominate, a long tail recurs rarely).
ZIPF_EXPONENT = 1.1


def _zipf_probabilities(count: int, exponent: float = ZIPF_EXPONENT) -> np.ndarray:
    weights = 1.0 / np.arange(1, count + 1, dtype=float) ** exponent
    return weights / weights.sum()


def _statement_text(kind: str, table: str, query) -> str:
    # repr round-trips floats exactly, so parsed statements rebuild
    # bit-identical queries and the differential check compares real
    # equality, not parse noise.
    center = ", ".join(repr(float(value)) for value in query.center)
    return (
        f"SELECT {kind} FROM {table} WITHIN {float(query.radius)!r} OF ({center})"
    )


def _build_pools(contexts: dict, pool_size: int) -> dict[str, list[str]]:
    """Per-table pools of distinct statements (mixed AVG/REGRESSION/COUNT)."""
    pools: dict[str, list[str]] = {}
    for table, context in contexts.items():
        statements = []
        for index in range(pool_size):
            query = context.training.queries[index % len(context.training.queries)]
            if index % 10 == 9:
                kind = "REGRESSION(u)"
            elif index % 20 == 6:
                kind = "COUNT(*)"
            else:
                kind = "AVG(u)"
            statements.append(_statement_text(kind, table, query))
        pools[table] = statements
    return pools


def _build_session_scripts(
    pools: dict[str, list[str]],
    *,
    sessions: int,
    scripts_per_session: int,
    script_size: int,
    seed: int,
) -> list[list[list[str]]]:
    """Zipfian per-session script streams (one table per script)."""
    table_probs = _zipf_probabilities(len(TABLES))
    statement_probs = {
        table: _zipf_probabilities(len(pool)) for table, pool in pools.items()
    }
    streams = []
    for session in range(sessions):
        rng = np.random.default_rng(seed + session)
        scripts = []
        for _ in range(scripts_per_session):
            table = TABLES[rng.choice(len(TABLES), p=table_probs)]
            pool = pools[table]
            picks = rng.choice(len(pool), size=script_size, p=statement_probs[table])
            scripts.append([pool[i] for i in picks])
        streams.append(scripts)
    return streams


def _run_sessions(front, streams: list[list[list[str]]]) -> dict:
    """Drive one script stream per thread; sustained stmt/s + percentiles."""
    front.reset_statistics()
    barrier = threading.Barrier(len(streams) + 1)
    errors: list[BaseException] = []

    def session_loop(scripts: list[list[str]]) -> None:
        try:
            barrier.wait()
            for script in scripts:
                results = front.execute_script(script, mode="hybrid")
                for result in results:
                    assert result.ok, result.error
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=session_loop, args=(scripts,))
        for scripts in streams
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    statements = sum(len(script) for scripts in streams for script in scripts)
    exported = front.statistics.export_metrics()
    return {
        "sessions": len(streams),
        "statements": statements,
        "seconds": elapsed,
        "qps": statements / elapsed,
        "p50_ms": exported["p50_seconds"] * 1e3,
        "p99_ms": exported["p99_seconds"] * 1e3,
        "mean_coalesce_width": exported["mean_coalesce_width"],
        "max_coalesce_width": exported["max_coalesce_width"],
        "cache_hits": exported["cache_hits"],
        "cache_hit_rate": exported["cache_hit_rate"],
        "statistics": exported,
    }


def _value_deviation(got, want) -> float:
    """Max absolute deviation between two statement values (0.0 when equal)."""
    if got is None or want is None:
        return 0.0 if got is want else float("inf")
    if isinstance(got, (int, float)):
        return abs(float(got) - float(want))
    deviation = 0.0
    if len(got) != len(want):
        return float("inf")
    for (got_b, got_w), (want_b, want_w) in zip(got, want):
        deviation = max(deviation, abs(float(got_b) - float(want_b)))
        got_slope = np.asarray(got_w, dtype=float)
        want_slope = np.asarray(want_w, dtype=float)
        if got_slope.size:
            deviation = max(deviation, float(np.max(np.abs(got_slope - want_slope))))
    return deviation


def _differential(front, sequential, pools: dict[str, list[str]]) -> dict:
    """Pin front answers (coalesced, then cached) to the sequential path."""
    statements = [sql for pool in pools.values() for sql in pool]
    reference = sequential.execute_script(statements, mode="hybrid")
    coalesced = front.execute_script(statements, mode="hybrid")
    cached = front.execute_script(statements, mode="hybrid")
    max_coalesced = 0.0
    max_cached = 0.0
    for got, want in zip(coalesced, reference):
        max_coalesced = max(max_coalesced, _value_deviation(got.value, want.value))
    cached_count = 0
    for got, want in zip(cached, reference):
        max_cached = max(max_cached, _value_deviation(got.value, want.value))
        cached_count += got.cached
    return {
        "statements": len(statements),
        "max_coalesced_deviation": max_coalesced,
        "max_cached_deviation": max_cached,
        "cached_answers": cached_count,
    }


def run_concurrent_benchmark(
    dataset_size: int = 40_000,
    training_queries: int = 800,
    *,
    pool_size: int = 48,
    scripts_per_session: int = 120,
    script_size: int = 4,
    session_counts: tuple[int, ...] = (1, 4, 16),
    coalesce_window_seconds: float = 0.002,
    seed: int = 7,
) -> dict:
    """Measure the concurrent front under N sessions, cache off and on."""
    contexts = {}
    models = {}
    for index, table in enumerate(TABLES):
        context = build_context(
            table,
            dimension=2,
            dataset_size=dataset_size,
            training_queries=training_queries,
            testing_queries=50,
            seed=seed + index,
        )
        contexts[table] = context
        models[table], _ = context.train_model()

    def make_service() -> AnalyticsService:
        service = AnalyticsService()
        for table, context in contexts.items():
            service.register_engine(table, context.engine)
            service.register_model(table, models[table])
        return service

    pools = _build_pools(contexts, pool_size)

    # --- sustained throughput per session count, cache OFF ------------------ #
    uncached_policy = ConcurrencyPolicy(
        coalesce_window_seconds=coalesce_window_seconds, cache_capacity=0
    )
    by_sessions = {}
    for sessions in session_counts:
        streams = _build_session_scripts(
            pools,
            sessions=sessions,
            scripts_per_session=scripts_per_session,
            script_size=script_size,
            seed=seed,
        )
        front = ConcurrentAnalyticsService(make_service(), policy=uncached_policy)
        try:
            by_sessions[sessions] = _run_sessions(front, streams)
        finally:
            front.close()

    # --- cache-hit fast path vs the uncached hybrid path -------------------- #
    cache_sessions = 4 if 4 in session_counts else session_counts[-1]
    streams = _build_session_scripts(
        pools,
        sessions=cache_sessions,
        scripts_per_session=scripts_per_session,
        script_size=script_size,
        seed=seed,
    )
    cached_front = ConcurrentAnalyticsService(
        make_service(),
        policy=ConcurrencyPolicy(coalesce_window_seconds=coalesce_window_seconds),
    )
    try:
        _run_sessions(cached_front, streams)  # warm pass populates the cache
        cache_hot = _run_sessions(cached_front, streams)
    finally:
        cached_front.close()
    uncached = by_sessions[cache_sessions]
    cache_speedup = cache_hot["qps"] / uncached["qps"]

    # --- differential: coalesced + cached answers vs sequential ------------- #
    sequential = make_service()
    differential_front = ConcurrentAnalyticsService(
        make_service(),
        policy=ConcurrencyPolicy(coalesce_window_seconds=coalesce_window_seconds),
    )
    try:
        differential = _differential(differential_front, sequential, pools)
    finally:
        differential_front.close()
        sequential.close()

    single = by_sessions[session_counts[0]]
    gate_sessions = 4 if 4 in session_counts else session_counts[-1]
    concurrent_speedup = by_sessions[gate_sessions]["qps"] / single["qps"]

    return {
        "setup": {
            "tables": list(TABLES),
            "dataset_size": dataset_size,
            "training_queries": training_queries,
            "pool_size": pool_size,
            "scripts_per_session": scripts_per_session,
            "script_size": script_size,
            "session_counts": list(session_counts),
            "coalesce_window_ms": coalesce_window_seconds * 1e3,
            "zipf_exponent": ZIPF_EXPONENT,
            "prototype_counts": {
                table: models[table].prototype_count for table in TABLES
            },
        },
        "by_sessions": {str(n): result for n, result in by_sessions.items()},
        "concurrent_speedup": concurrent_speedup,
        "gate_sessions": gate_sessions,
        "cache": {
            "sessions": cache_sessions,
            "hot_qps": cache_hot["qps"],
            "hot_p50_ms": cache_hot["p50_ms"],
            "hot_p99_ms": cache_hot["p99_ms"],
            "hot_hit_rate": cache_hot["cache_hit_rate"],
            "uncached_qps": uncached["qps"],
            "speedup": cache_speedup,
        },
        "differential": differential,
        "required_concurrent_speedup": REQUIRED_CONCURRENT_SPEEDUP,
        "required_cache_speedup": REQUIRED_CACHE_SPEEDUP,
        "deviation_budget": DEVIATION_BUDGET,
    }


def _format(result: dict) -> str:
    lines = [
        "Concurrent serving front (Zipfian multi-session mix)",
        f"  tables:               {', '.join(result['setup']['tables'])}"
        f" (pool {result['setup']['pool_size']} stmts/table,"
        f" window {result['setup']['coalesce_window_ms']:.1f} ms)",
    ]
    for sessions, run in result["by_sessions"].items():
        lines.append(
            f"  N={sessions:>2} sessions:       {run['qps']:,.0f} stmt/s"
            f"  p50 {run['p50_ms']:.2f} ms  p99 {run['p99_ms']:.2f} ms"
            f"  width {run['mean_coalesce_width']:.1f}"
            f" (max {run['max_coalesce_width']})"
        )
    cache = result["cache"]
    differential = result["differential"]
    lines += [
        f"  concurrent speedup:   {result['concurrent_speedup']:.1f}x at "
        f"N={result['gate_sessions']} (required >= "
        f"{result['required_concurrent_speedup']:.0f}x)",
        f"  cache-hit fast path:  {cache['hot_qps']:,.0f} stmt/s "
        f"(hit rate {cache['hot_hit_rate']:.2f}, p99 {cache['hot_p99_ms']:.2f} ms)",
        f"  cache speedup:        {cache['speedup']:.1f}x over uncached "
        f"(required >= {result['required_cache_speedup']:.0f}x)",
        f"  differential:         coalesced "
        f"{differential['max_coalesced_deviation']:.2e} / cached "
        f"{differential['max_cached_deviation']:.2e} "
        f"({differential['cached_answers']} of "
        f"{differential['statements']} answered from cache)",
    ]
    return "\n".join(lines)


def _check(result: dict) -> list[str]:
    """Return the list of failed headline requirements (empty when green)."""
    failures: list[str] = []
    if result["concurrent_speedup"] < result["required_concurrent_speedup"]:
        failures.append(
            f"concurrent throughput at N={result['gate_sessions']} is "
            f"{result['concurrent_speedup']:.2f}x single-session, below the "
            f"required {result['required_concurrent_speedup']:.0f}x"
        )
    if result["cache"]["speedup"] < result["required_cache_speedup"]:
        failures.append(
            f"cache-hit fast path is {result['cache']['speedup']:.2f}x the "
            f"uncached path, below the required "
            f"{result['required_cache_speedup']:.0f}x"
        )
    differential = result["differential"]
    if differential["max_coalesced_deviation"] > DEVIATION_BUDGET:
        failures.append("coalesced answers deviate from the sequential service")
    if differential["max_cached_deviation"] > DEVIATION_BUDGET:
        failures.append("cached answers deviate from the sequential service")
    if differential["cached_answers"] == 0:
        failures.append("the differential repeat pass produced no cache hits")
    return failures


def _extract(result: dict) -> dict:
    sessions = result["by_sessions"]
    single = sessions[str(result["setup"]["session_counts"][0])]
    gated = sessions[str(result["gate_sessions"])]
    cache = result["cache"]
    differential = result["differential"]
    return {
        "qps_single": single["qps"],
        "qps_at_gate": gated["qps"],
        "concurrent_speedup": result["concurrent_speedup"],
        "cache_hot_qps": cache["hot_qps"],
        "cache_speedup": cache["speedup"],
        "cache_hit_rate": cache["hot_hit_rate"],
        "mean_coalesce_width": gated["mean_coalesce_width"],
        "max_coalesce_width": gated["max_coalesce_width"],
        "p50_ms": gated["p50_ms"],
        "p99_ms": gated["p99_ms"],
        "cache_hot_p99_ms": cache["hot_p99_ms"],
        "max_coalesced_deviation": differential["max_coalesced_deviation"],
        "max_cached_deviation": differential["max_cached_deviation"],
        "cached_answers": float(differential["cached_answers"]),
    }


SPEC = BenchmarkSpec(
    name="concurrent",
    title="Concurrent serving front (Zipfian multi-session mix)",
    artifact="concurrent",
    run=run_concurrent_benchmark,
    # The p50/p99 and coalesce-width series are timing-shaped (they depend
    # on scheduler interleaving inside the coalesce window), so they are
    # tracked as info rather than regression-gated.
    metrics={
        "qps_single": "info",
        "qps_at_gate": "higher",
        "concurrent_speedup": "higher",
        "cache_hot_qps": "higher",
        "cache_speedup": "higher",
        "cache_hit_rate": "higher",
        "mean_coalesce_width": "info",
        "max_coalesce_width": "info",
        "p50_ms": "info",
        "p99_ms": "info",
        "cache_hot_p99_ms": "info",
        "max_coalesced_deviation": "info",
        "max_cached_deviation": "info",
        "cached_answers": "info",
    },
    extract=_extract,
    check=lambda result, params: _check(result),
    format=_format,
    default_params={
        "dataset_size": 40_000,
        "training_queries": 800,
        "pool_size": 48,
        "scripts_per_session": 120,
        "script_size": 4,
        "session_counts": (1, 4, 16),
        "coalesce_window_seconds": 0.002,
        "seed": 7,
    },
    smoke_params={
        "dataset_size": 20_000,
        "training_queries": 400,
        "pool_size": 32,
        "scripts_per_session": 40,
        "session_counts": (1, 4),
    },
)


def test_concurrent_benchmark(results_dir, record_table):
    """Benchmark-suite entry point: asserts the headline requirements."""
    pytest_entry(SPEC, results_dir, record_table)


if __name__ == "__main__":
    raise SystemExit(script_main(SPEC))
