"""Figures 13 & 14: impact of the mean query radius on training and quality.

The paper sweeps the mean radius ``mu_theta`` of the training queries and
shows a three-way trade-off:

* large radii -> answers approach the global mean, so very few training
  pairs are needed and the Q1 RMSE is low, but the goodness of fit (CoD)
  collapses because every LLM degenerates to a constant;
* small radii -> many training pairs are needed and the RMSE is higher,
  but the local models actually explain the data (high CoD).

Figure 13 plots RMSE vs ``mu_theta`` and |T| vs CoD; Figure 14 shows the
trajectory of (|T|, RMSE, CoD) as ``mu_theta`` varies.  Both are generated
from the same sweep, so this module records both result files.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments import run_radius_tradeoff_experiment
from repro.eval.reporting import format_series_table

RADIUS_MEANS = (0.05, 0.1, 0.2, 0.4, 0.8)


def test_fig13_fig14_radius_tradeoff(benchmark, record_table):
    result = benchmark.pedantic(
        run_radius_tradeoff_experiment,
        kwargs={
            "radius_means": RADIUS_MEANS,
            "dimensions": (2, 5),
            "dataset_name": "R1",
            "dataset_size": 12_000,
            "training_queries": 2_000,
            "testing_queries": 40,
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )

    fig13_tables = []
    fig14_tables = []
    for dimension, series in result["by_dimension"].items():
        fig13_tables.append(
            format_series_table(
                "mu_theta",
                series["radius_means"],
                {"RMSE": series["rmse"], "|T| to convergence": series["training_pairs"]},
                title=f"Figure 13 — RMSE and |T| vs mu_theta (R1, {dimension})",
            )
        )
        fig14_tables.append(
            format_series_table(
                "mu_theta",
                series["radius_means"],
                {
                    "|T|": series["training_pairs"],
                    "RMSE": series["rmse"],
                    "CoD": series["cod"],
                    "K": series["prototypes"],
                },
                title=f"Figure 14 — (|T|, RMSE, CoD) trajectory (R1, {dimension})",
            )
        )
    record_table("fig13_radius_tradeoff", "\n\n".join(fig13_tables))
    record_table("fig14_radius_trajectory", "\n\n".join(fig14_tables))

    for dimension, series in result["by_dimension"].items():
        rmse_values = np.asarray(series["rmse"])
        cods = np.asarray(series["cod"])
        # Shape of the trade-off: the largest radius gives the lowest Q1 RMSE
        # (answers collapse towards the global mean) but a collapsed CoD,
        # while some smaller radius achieves a clearly positive CoD.
        assert rmse_values[-1] <= rmse_values[0]
        assert np.max(cods) > 0.0
        assert cods[-1] < np.max(cods) - 0.3
        # Note: the paper also reports that large radii converge with fewer
        # training pairs.  With the windowed criterion and laptop-scale
        # workloads the |T|-to-convergence direction does not reproduce
        # cleanly (see EXPERIMENTS.md), so it is reported but not asserted.
