"""Figure 9: Q2 goodness of fit (FVU) of LLM vs REG vs PLR vs coefficient a.

The paper's claims: (i) for fine quantizations the LLM's piecewise answer
explains the analyst subspaces far better than the single REG plane and
approaches PLR, and (ii) as ``a -> 1`` (one prototype) the LLM degrades to
REG-like quality.  PLR, which fits with full data access, has the lowest
FVU throughout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import run_q2_fvu_vs_coefficient
from repro.eval.reporting import format_series_table

COEFFICIENTS = (0.05, 0.1, 0.25, 0.9)


@pytest.mark.parametrize("dataset", ["R1", "R2"])
def test_fig09_fvu_vs_coefficient(dataset, benchmark, record_table):
    result = benchmark.pedantic(
        run_q2_fvu_vs_coefficient,
        kwargs={
            "dataset_name": dataset,
            "dimensions": (2, 5),
            "coefficients": COEFFICIENTS,
            "dataset_size": 12_000,
            "training_queries": 1_500,
            "testing_queries": 12,
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )

    tables = []
    for dimension, series in result["by_dimension"].items():
        tables.append(
            format_series_table(
                "a",
                list(result["coefficients"]),
                {
                    "LLM FVU": series["llm_fvu"],
                    "REG FVU": series["reg_fvu"],
                    "PLR FVU": series["plr_fvu"],
                    "|S| per query": series["mean_local_models"],
                },
                title=f"Figure 9 — FVU vs a ({dataset}, {dimension})",
            )
        )
    record_table(f"fig09_fvu_vs_a_{dataset}", "\n\n".join(tables))

    for dimension, series in result["by_dimension"].items():
        llm = np.asarray(series["llm_fvu"])
        reg = np.asarray(series["reg_fvu"])
        plr = np.asarray(series["plr_fvu"])
        # PLR (full data access, knot budget tied to K as in the paper) is at
        # least as good as the single REG plane when given a reasonable
        # budget, i.e. at the finest quantization.
        assert plr[0] <= reg[0] + 1e-6
        # Degradation towards REG-like quality as a -> 1: the coarsest LLM is
        # worse than the finest one, and the finest LLM explains most of the
        # variance (FVU < 1).
        assert llm[-1] > llm[0]
        assert llm[0] < 1.0
        if dimension == "d=2":
            # At d = 2 the laptop-scale training workload is dense enough for
            # the paper's headline ordering to appear: the LLM's piecewise
            # answer beats the single exact plane over the same subspaces.
            # (At d = 5 this needs the paper's much larger workload; see
            # EXPERIMENTS.md.)
            assert llm[0] < reg[0]
