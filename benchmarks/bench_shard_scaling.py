"""Sharded batch execution vs the single-engine scan batch path.

The sharded engine answers exact Q1/Q2 batches by fanning per-shard
sufficient-statistics scans out over a worker pool and merging exactly
(blocked OLS for Q2).  This benchmark measures, on an N >= 200k scan
workload (the regime of the paper's Figure-12 scalability story where no
selective index applies):

* the single-engine full-scan batch path (``use_index=False``),
* the sharded engine at 1 and 2+ workers, thread and process backends,

verifies the sharded answers against the single-engine ones to 1e-9, and
records everything in ``BENCH_shard.json`` (the backend winner is reported
so the default backend choice stays an empirical fact).  Sharding wins on
two axes: shard-sized working sets are cache-blocked even on one core, and
the GIL-releasing NumPy kernels scale across cores where available.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import time
from pathlib import Path

import numpy as np

from repro.data.synthetic import make_rosenbrock_dataset, normalize_dataset
from repro.dbms.executor import ExactQueryEngine
from repro.dbms.sharding import ShardedQueryEngine
from repro.eval.experiments import default_radius_distribution
from repro.eval.timing import measure_amortized_latency
from repro.queries.workload import QueryWorkloadGenerator, WorkloadSpec

#: Batch-vs-single agreement gate (CI fails beyond this).
MAX_DEVIATION = 1e-9


def _deviation(single: list, other: list) -> float:
    worst = 0.0
    for left, right in zip(single, other):
        if left is None or right is None:
            if left is not right:
                return math.inf
            continue
        worst = max(worst, abs(left.mean - right.mean))
        if left.coefficients is not None and right.coefficients is not None:
            worst = max(
                worst, float(np.max(np.abs(left.coefficients - right.coefficients)))
            )
    return worst


def run_shard_scaling(
    dataset_size: int = 200_000,
    batch_size: int = 400,
    *,
    dimension: int = 2,
    worker_counts: tuple[int, ...] = (1, 2),
    backends: tuple[str, ...] = ("threads", "processes"),
    repetitions: int = 2,
    seed: int = 7,
) -> dict:
    """Measure sharded vs single-engine scan-batch throughput and agreement."""
    dataset = normalize_dataset(
        make_rosenbrock_dataset(dataset_size, dimension=dimension, seed=seed)
    )
    radius = default_radius_distribution(dimension)
    low, high = dataset.domain
    generator = QueryWorkloadGenerator(
        WorkloadSpec(
            dimension=dimension, center_low=low, center_high=high, radius=radius
        ),
        seed=seed,
    )
    queries = generator.generate(batch_size)

    single = ExactQueryEngine(dataset, use_index=False)
    single_q1 = measure_amortized_latency(
        lambda: single.execute_q1_batch(queries, on_empty="null"),
        batch_size,
        repetitions=repetitions,
    )
    single_q2 = measure_amortized_latency(
        lambda: single.execute_q2_batch(queries, on_empty="null"),
        batch_size,
        repetitions=repetitions,
    )
    reference_q1 = single.execute_q1_batch(queries, on_empty="null")
    reference_q2 = single.execute_q2_batch(queries, on_empty="null")

    runs: list[dict] = []
    for backend in backends:
        for workers in worker_counts:
            with ShardedQueryEngine(
                dataset, backend=backend, max_workers=workers
            ) as engine:
                q1_stats = measure_amortized_latency(
                    lambda: engine.execute_q1_batch(queries, on_empty="null"),
                    batch_size,
                    repetitions=repetitions,
                )
                q2_stats = measure_amortized_latency(
                    lambda: engine.execute_q2_batch(queries, on_empty="null"),
                    batch_size,
                    repetitions=repetitions,
                )
                q1_dev = _deviation(
                    reference_q1, engine.execute_q1_batch(queries, on_empty="null")
                )
                q2_dev = _deviation(
                    reference_q2, engine.execute_q2_batch(queries, on_empty="null")
                )
                runs.append(
                    {
                        "backend": backend,
                        "workers": workers,
                        "num_shards": engine.num_shards,
                        "q1_qps": q1_stats["items_per_second"],
                        "q2_qps": q2_stats["items_per_second"],
                        "q1_mean_latency_ms": q1_stats["mean_ms"],
                        "q2_mean_latency_ms": q2_stats["mean_ms"],
                        "q1_max_abs_deviation": q1_dev,
                        "q2_max_abs_deviation": q2_dev,
                        "q1_speedup_vs_single": q1_stats["items_per_second"]
                        / single_q1["items_per_second"],
                        "q2_speedup_vs_single": q2_stats["items_per_second"]
                        / single_q2["items_per_second"],
                    }
                )

    best = max(runs, key=lambda run: run["q1_qps"] + run["q2_qps"])
    return {
        "setup": {
            "dataset_size": dataset_size,
            "dimension": dimension,
            "batch_size": batch_size,
            "worker_counts": list(worker_counts),
            "backends": list(backends),
            "cpu_count": os.cpu_count() or 1,
        },
        "single_engine": {
            "q1_qps": single_q1["items_per_second"],
            "q2_qps": single_q2["items_per_second"],
            "q1_mean_latency_ms": single_q1["mean_ms"],
            "q2_mean_latency_ms": single_q2["mean_ms"],
        },
        "sharded": runs,
        "winner": {"backend": best["backend"], "workers": best["workers"]},
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def _format(result: dict) -> str:
    single = result["single_engine"]
    lines = [
        "Sharded batch execution (N = "
        f"{result['setup']['dataset_size']:,}, batch "
        f"{result['setup']['batch_size']})",
        f"  single scan:   Q1 {single['q1_qps']:,.0f} q/s | "
        f"Q2 {single['q2_qps']:,.0f} q/s",
    ]
    for run in result["sharded"]:
        lines.append(
            f"  {run['backend']:9s} w={run['workers']} "
            f"(shards={run['num_shards']}): "
            f"Q1 {run['q1_qps']:,.0f} q/s ({run['q1_speedup_vs_single']:.2f}x) | "
            f"Q2 {run['q2_qps']:,.0f} q/s ({run['q2_speedup_vs_single']:.2f}x) | "
            f"dev {max(run['q1_max_abs_deviation'], run['q2_max_abs_deviation']):.1e}"
        )
    winner = result["winner"]
    lines.append(f"  winner: {winner['backend']} @ {winner['workers']} workers")
    return "\n".join(lines)


def _check(result: dict, *, require_speedup: bool) -> list[str]:
    """NaN / deviation gates (CI), plus the >= 2-worker win in full runs."""
    failures: list[str] = []

    def walk(node, path=""):
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{path}.{key}")
        elif isinstance(node, list):
            for index, value in enumerate(node):
                walk(value, f"{path}[{index}]")
        elif isinstance(node, float) and not math.isfinite(node):
            failures.append(f"non-finite value at {path}")

    walk({key: value for key, value in result.items() if key != "timestamp"})
    for run in result["sharded"]:
        worst = max(run["q1_max_abs_deviation"], run["q2_max_abs_deviation"])
        if worst > MAX_DEVIATION:
            failures.append(
                f"{run['backend']} w={run['workers']} deviates from the "
                f"single-engine batch by {worst:.2e} (> {MAX_DEVIATION:.0e})"
            )
    if require_speedup:
        multi = [run for run in result["sharded"] if run["workers"] >= 2]
        best = max(
            (
                max(run["q1_speedup_vs_single"], run["q2_speedup_vs_single"])
                for run in multi
            ),
            default=0.0,
        )
        if result["setup"].get("cpu_count", 1) < 2:
            # A worker pool cannot outrun an equally-blocked single-core
            # kernel without a second core; record the numbers, skip the gate.
            print(
                "NOTE: single-CPU host - parallel-speedup gate skipped "
                f"(best 2+-worker speedup observed: {best:.2f}x)"
            )
        elif multi and best <= 1.0:
            failures.append(
                "no 2+-worker sharded configuration beat the single-engine "
                "batch path"
            )
    return failures


def test_shard_scaling(results_dir, record_table):
    """Benchmark-suite entry point (reduced size, same N >= 200k regime)."""
    result = run_shard_scaling(
        batch_size=150, backends=("threads",), repetitions=1
    )
    record_table("bench_shard_scaling", _format(result))
    (results_dir / "BENCH_shard.json").write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    failures = _check(result, require_speedup=False)
    assert not failures, "; ".join(failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced batch and thread-only configuration for CI smoke runs",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_shard.json"),
        help="where to write the JSON results (default: ./BENCH_shard.json)",
    )
    args = parser.parse_args()
    if args.smoke:
        result = run_shard_scaling(
            batch_size=100,
            backends=("threads",),
            worker_counts=(1, 2),
            repetitions=1,
        )
        failures = _check(result, require_speedup=False)
    else:
        result = run_shard_scaling()
        failures = _check(result, require_speedup=True)
    print(_format(result))
    args.output.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.output}")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
