"""Sharded batch execution vs the single-engine batch paths.

The sharded engine answers exact Q1/Q2 batches by fanning per-shard
sufficient-statistics kernels out over a worker pool and merging exactly
(blocked OLS for Q2).  Since PR 3 each shard owns two kernels — the
cache-blocked full scan and a per-shard grid-indexed segmented pipeline —
plus an adaptive router (``route="auto"``) choosing between them from a
selectivity estimate.  This benchmark measures, on an N >= 200k workload:

* the classic backend/worker axis (thread and process pools, 1 and 2+
  workers) on the unselective scan-regime workload of the Figure-12
  scalability story, against the single-engine full-scan batch path;
* a **selectivity axis**: the same engine at forced ``route="scan"``,
  forced ``route="indexed"`` and adaptive ``route="auto"`` across radius
  regimes from highly selective (radius much smaller than the data extent)
  to scan-bound, against both single-engine batch paths (indexed and
  scan) — recording where the per-shard indexed pipeline crosses over the
  shard scan and whether the router lands on the winning side.

Every configuration is verified against the single-engine answers to 1e-9
and everything is emitted through the ``repro.bench`` harness (JSONL
results store + one ``BENCH_shard.json`` artifact), so the default backend
and the router's thresholds stay empirical facts.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py [--smoke]
"""

from __future__ import annotations

import math
import os

import numpy as np

from repro.bench import BenchmarkSpec
from repro.bench.cli import pytest_entry, script_main

from repro.data.synthetic import make_rosenbrock_dataset, normalize_dataset
from repro.dbms.executor import ExactQueryEngine
from repro.dbms.sharding import ShardedQueryEngine
from repro.eval.timing import measure_amortized_latency
from repro.queries.workload import (
    QueryWorkloadGenerator,
    RadiusDistribution,
    WorkloadSpec,
)

#: Batch-vs-single agreement gate (CI fails beyond this).
MAX_DEVIATION = 1e-9

#: Radius regimes of the selectivity axis (mean, std of the query radius on
#: the normalised [0, 1] domain).  "selective" touches a few cells per
#: query; "moderate" sits near the router's crossover; "scan" makes most
#: rows candidates, where the sequential scan kernel wins.
SELECTIVITY_REGIMES: dict[str, tuple[float, float]] = {
    "selective": (0.02, 0.002),
    "moderate": (0.10, 0.01),
    "scan": (0.40, 0.04),
}


def _deviation(single: list, other: list) -> float:
    worst = 0.0
    for left, right in zip(single, other):
        if left is None or right is None:
            if left is not right:
                return math.inf
            continue
        worst = max(worst, abs(left.mean - right.mean))
        if left.coefficients is not None and right.coefficients is not None:
            worst = max(
                worst, float(np.max(np.abs(left.coefficients - right.coefficients)))
            )
    return worst


def _workload(dimension: int, radius: RadiusDistribution, count: int, seed: int):
    generator = QueryWorkloadGenerator(
        WorkloadSpec(
            dimension=dimension, center_low=0.0, center_high=1.0, radius=radius
        ),
        seed=seed,
    )
    return generator.generate(count)


def _measure_engine(engine, queries, batch_size: int, repetitions: int) -> dict:
    q1 = measure_amortized_latency(
        lambda: engine.execute_q1_batch(queries, on_empty="null"),
        batch_size,
        repetitions=repetitions,
    )
    q2 = measure_amortized_latency(
        lambda: engine.execute_q2_batch(queries, on_empty="null"),
        batch_size,
        repetitions=repetitions,
    )
    return {
        "q1_qps": q1["items_per_second"],
        "q2_qps": q2["items_per_second"],
        "q1_mean_latency_ms": q1["mean_ms"],
        "q2_mean_latency_ms": q2["mean_ms"],
    }


def run_shard_scaling(
    dataset_size: int = 200_000,
    batch_size: int = 400,
    *,
    dimension: int = 2,
    worker_counts: tuple[int, ...] = (1, 2),
    backends: tuple[str, ...] = ("threads", "processes"),
    regimes: tuple[str, ...] = ("selective", "moderate", "scan"),
    repetitions: int = 2,
    seed: int = 7,
) -> dict:
    """Measure sharded vs single-engine batch throughput and agreement."""
    dataset = normalize_dataset(
        make_rosenbrock_dataset(dataset_size, dimension=dimension, seed=seed)
    )

    # ------------------------------------------------------------------ #
    # classic axis: backends x workers on the scan-regime workload
    # ------------------------------------------------------------------ #
    scan_radius = RadiusDistribution(*SELECTIVITY_REGIMES["scan"])
    scan_queries = _workload(dimension, scan_radius, batch_size, seed)
    single_scan = ExactQueryEngine(dataset, use_index=False)
    single_scan_stats = _measure_engine(
        single_scan, scan_queries, batch_size, repetitions
    )
    reference_q1 = single_scan.execute_q1_batch(scan_queries, on_empty="null")
    reference_q2 = single_scan.execute_q2_batch(scan_queries, on_empty="null")

    runs: list[dict] = []
    for backend in backends:
        for workers in worker_counts:
            with ShardedQueryEngine(
                dataset, backend=backend, max_workers=workers, route="scan"
            ) as engine:
                stats = _measure_engine(
                    engine, scan_queries, batch_size, repetitions
                )
                q1_dev = _deviation(
                    reference_q1,
                    engine.execute_q1_batch(scan_queries, on_empty="null"),
                )
                q2_dev = _deviation(
                    reference_q2,
                    engine.execute_q2_batch(scan_queries, on_empty="null"),
                )
                runs.append(
                    {
                        "backend": backend,
                        "workers": workers,
                        "num_shards": engine.num_shards,
                        **stats,
                        "q1_max_abs_deviation": q1_dev,
                        "q2_max_abs_deviation": q2_dev,
                        "q1_speedup_vs_single": stats["q1_qps"]
                        / single_scan_stats["q1_qps"],
                        "q2_speedup_vs_single": stats["q2_qps"]
                        / single_scan_stats["q2_qps"],
                    }
                )

    # ------------------------------------------------------------------ #
    # selectivity axis: forced scan / forced indexed / routed per regime
    # ------------------------------------------------------------------ #
    single_indexed = ExactQueryEngine(dataset, use_index=True)
    selectivity_axis: list[dict] = []
    for regime in regimes:
        mean, std = SELECTIVITY_REGIMES[regime]
        queries = _workload(
            dimension, RadiusDistribution(mean, std), batch_size, seed + 1
        )
        regime_reference_q1 = single_indexed.execute_q1_batch(
            queries, on_empty="null"
        )
        regime_reference_q2 = single_indexed.execute_q2_batch(
            queries, on_empty="null"
        )
        entry: dict = {
            "regime": regime,
            "radius_mean": mean,
            "single_indexed": _measure_engine(
                single_indexed, queries, batch_size, repetitions
            ),
            "single_scan": _measure_engine(
                single_scan, queries, batch_size, repetitions
            ),
            "routes": {},
        }
        for route in ("scan", "indexed", "auto"):
            with ShardedQueryEngine(
                dataset, backend="threads", route=route
            ) as engine:
                stats = _measure_engine(engine, queries, batch_size, repetitions)
                q1_dev = _deviation(
                    regime_reference_q1,
                    engine.execute_q1_batch(queries, on_empty="null"),
                )
                q2_dev = _deviation(
                    regime_reference_q2,
                    engine.execute_q2_batch(queries, on_empty="null"),
                )
                rows_per_query = engine.statistics.rows_scanned / max(
                    engine.statistics.queries_executed, 1
                )
                entry["routes"][route] = {
                    **stats,
                    "q1_max_abs_deviation": q1_dev,
                    "q2_max_abs_deviation": q2_dev,
                    "rows_touched_per_query": rows_per_query,
                }
        scan_stats = entry["routes"]["scan"]
        indexed_stats = entry["routes"]["indexed"]
        auto_stats = entry["routes"]["auto"]
        entry["indexed_speedup_vs_scan"] = {
            "q1": indexed_stats["q1_qps"] / scan_stats["q1_qps"],
            "q2": indexed_stats["q2_qps"] / scan_stats["q2_qps"],
        }
        best_forced = max(
            scan_stats["q2_qps"], indexed_stats["q2_qps"]
        )
        entry["routed_efficiency_q2"] = auto_stats["q2_qps"] / best_forced
        selectivity_axis.append(entry)

    best = max(runs, key=lambda run: run["q1_qps"] + run["q2_qps"])
    return {
        "setup": {
            "dataset_size": dataset_size,
            "dimension": dimension,
            "batch_size": batch_size,
            "worker_counts": list(worker_counts),
            "backends": list(backends),
            "regimes": {name: SELECTIVITY_REGIMES[name] for name in regimes},
            "cpu_count": os.cpu_count() or 1,
        },
        "single_engine": single_scan_stats,
        "sharded": runs,
        "selectivity_axis": selectivity_axis,
        "winner": {"backend": best["backend"], "workers": best["workers"]},
    }


def _format(result: dict) -> str:
    single = result["single_engine"]
    lines = [
        "Sharded batch execution (N = "
        f"{result['setup']['dataset_size']:,}, batch "
        f"{result['setup']['batch_size']})",
        f"  single scan:   Q1 {single['q1_qps']:,.0f} q/s | "
        f"Q2 {single['q2_qps']:,.0f} q/s",
    ]
    for run in result["sharded"]:
        lines.append(
            f"  {run['backend']:9s} w={run['workers']} "
            f"(shards={run['num_shards']}): "
            f"Q1 {run['q1_qps']:,.0f} q/s ({run['q1_speedup_vs_single']:.2f}x) | "
            f"Q2 {run['q2_qps']:,.0f} q/s ({run['q2_speedup_vs_single']:.2f}x) | "
            f"dev {max(run['q1_max_abs_deviation'], run['q2_max_abs_deviation']):.1e}"
        )
    winner = result["winner"]
    lines.append(f"  winner: {winner['backend']} @ {winner['workers']} workers")
    lines.append("  selectivity axis (threads backend):")
    for entry in result["selectivity_axis"]:
        lines.append(
            f"    {entry['regime']:9s} (radius ~{entry['radius_mean']:.2f}): "
            f"indexed/scan Q1 {entry['indexed_speedup_vs_scan']['q1']:.2f}x "
            f"Q2 {entry['indexed_speedup_vs_scan']['q2']:.2f}x | "
            f"routed Q2 at {entry['routed_efficiency_q2']:.2f} of best forced"
        )
        for route, stats in entry["routes"].items():
            lines.append(
                f"      {route:7s}: Q1 {stats['q1_qps']:,.0f} q/s | "
                f"Q2 {stats['q2_qps']:,.0f} q/s | "
                f"{stats['rows_touched_per_query']:,.0f} rows/q | "
                f"dev {max(stats['q1_max_abs_deviation'], stats['q2_max_abs_deviation']):.1e}"
            )
    return "\n".join(lines)


def _check(result: dict, *, require_speedup: bool) -> list[str]:
    """NaN / deviation / crossover gates (CI), plus the >= 2-worker win."""
    failures: list[str] = []

    def walk(node, path=""):
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{path}.{key}")
        elif isinstance(node, (list, tuple)):
            for index, value in enumerate(node):
                walk(value, f"{path}[{index}]")
        elif isinstance(node, float) and not math.isfinite(node):
            failures.append(f"non-finite value at {path}")

    walk(result)
    for run in result["sharded"]:
        worst = max(run["q1_max_abs_deviation"], run["q2_max_abs_deviation"])
        if worst > MAX_DEVIATION:
            failures.append(
                f"{run['backend']} w={run['workers']} deviates from the "
                f"single-engine batch by {worst:.2e} (> {MAX_DEVIATION:.0e})"
            )
    for entry in result["selectivity_axis"]:
        for route, stats in entry["routes"].items():
            worst = max(
                stats["q1_max_abs_deviation"], stats["q2_max_abs_deviation"]
            )
            if worst > MAX_DEVIATION:
                failures.append(
                    f"{entry['regime']}/{route} deviates from the single-"
                    f"engine batch by {worst:.2e} (> {MAX_DEVIATION:.0e})"
                )
        if entry["regime"] == "selective":
            speedup = entry["indexed_speedup_vs_scan"]
            if min(speedup["q1"], speedup["q2"]) <= 1.0:
                failures.append(
                    "the indexed sharded route did not beat the sharded scan "
                    f"on the selective regime (Q1 {speedup['q1']:.2f}x, "
                    f"Q2 {speedup['q2']:.2f}x)"
                )
    if require_speedup:
        multi = [run for run in result["sharded"] if run["workers"] >= 2]
        best = max(
            (
                max(run["q1_speedup_vs_single"], run["q2_speedup_vs_single"])
                for run in multi
            ),
            default=0.0,
        )
        if result["setup"].get("cpu_count", 1) < 2:
            # A worker pool cannot outrun an equally-blocked single-core
            # kernel without a second core; record the numbers, skip the gate.
            print(
                "NOTE: single-CPU host - parallel-speedup gate skipped "
                f"(best 2+-worker speedup observed: {best:.2f}x)"
            )
        elif multi and best <= 1.0:
            failures.append(
                "no 2+-worker sharded configuration beat the single-engine "
                "batch path"
            )
    return failures


def _run_harness(require_speedup: bool = True, **params) -> dict:
    """Harness entry: the gate flag rides in the config, not the run."""
    return run_shard_scaling(**params)


def _extract(result: dict) -> dict:
    runs = result["sharded"]
    metrics = {
        "single_q1_qps": result["single_engine"]["q1_qps"],
        "single_q2_qps": result["single_engine"]["q2_qps"],
        "best_sharded_q1_qps": max(run["q1_qps"] for run in runs),
        "best_sharded_q2_qps": max(run["q2_qps"] for run in runs),
        "best_q1_speedup": max(run["q1_speedup_vs_single"] for run in runs),
        "best_q2_speedup": max(run["q2_speedup_vs_single"] for run in runs),
        "max_deviation": max(
            max(run["q1_max_abs_deviation"], run["q2_max_abs_deviation"])
            for run in runs
        ),
    }
    for entry in result["selectivity_axis"]:
        if entry["regime"] == "selective":
            metrics["selective_indexed_q1_speedup"] = entry[
                "indexed_speedup_vs_scan"
            ]["q1"]
            metrics["selective_indexed_q2_speedup"] = entry[
                "indexed_speedup_vs_scan"
            ]["q2"]
        metrics[f"routed_efficiency_q2_{entry['regime']}"] = entry[
            "routed_efficiency_q2"
        ]
    return metrics


SPEC = BenchmarkSpec(
    name="shard_scaling",
    title="Sharded batch execution (N >= 200k)",
    artifact="shard",
    run=_run_harness,
    metrics={
        "single_q1_qps": "info",
        "single_q2_qps": "info",
        "best_sharded_q1_qps": "higher",
        "best_sharded_q2_qps": "higher",
        "best_q1_speedup": "info",
        "best_q2_speedup": "info",
        "selective_indexed_q1_speedup": "higher",
        "selective_indexed_q2_speedup": "higher",
        "routed_efficiency_q2_selective": "info",
        "routed_efficiency_q2_moderate": "info",
        "routed_efficiency_q2_scan": "info",
        "max_deviation": "info",
    },
    extract=_extract,
    check=lambda result, params: _check(
        result, require_speedup=bool(params.get("require_speedup", True))
    ),
    format=_format,
    default_params={
        "dataset_size": 200_000,
        "batch_size": 400,
        "dimension": 2,
        "worker_counts": (1, 2),
        "backends": ("threads", "processes"),
        "regimes": ("selective", "moderate", "scan"),
        "repetitions": 2,
        "seed": 7,
        "require_speedup": True,
    },
    smoke_params={
        "batch_size": 100,
        "backends": ("threads",),
        "regimes": ("selective", "scan"),
        "repetitions": 1,
        "require_speedup": False,
    },
)


def test_shard_scaling(results_dir, record_table):
    """Benchmark-suite entry point (reduced size, same N >= 200k regime)."""
    pytest_entry(
        SPEC,
        results_dir,
        record_table,
        label="smoke",
        batch_size=150,
    )


if __name__ == "__main__":
    raise SystemExit(script_main(SPEC))
