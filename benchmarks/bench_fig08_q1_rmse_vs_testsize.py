"""Figure 8: Q1 prediction RMSE vs the number of unseen test queries.

The paper's point is robustness: once trained, the model's prediction error
stays essentially flat as the unseen workload grows, for d in {2, 3, 5}.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import run_q1_accuracy_vs_test_size
from repro.eval.reporting import format_series_table

TEST_SIZES = (100, 200, 400, 800)


@pytest.mark.parametrize("dataset", ["R1", "R2"])
def test_fig08_q1_rmse_vs_test_size(dataset, benchmark, record_table):
    result = benchmark.pedantic(
        run_q1_accuracy_vs_test_size,
        kwargs={
            "dataset_name": dataset,
            "dimensions": (2, 3, 5),
            "test_sizes": TEST_SIZES,
            "dataset_size": 12_000,
            "training_queries": 1_500,
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    record_table(
        f"fig08_q1_rmse_vs_testsize_{dataset}",
        format_series_table(
            "|V|",
            list(result["test_sizes"]),
            result["rmse"],
            title=f"Figure 8 — Q1 RMSE vs number of unseen queries ({dataset})",
        ),
    )

    for dimension, rmses in result["rmse"].items():
        values = np.asarray(rmses)
        assert np.all(np.isfinite(values))
        # Shape: constant, low prediction error — the spread across test-set
        # sizes stays small compared to the error level itself.
        assert values.max() < 0.15
        assert values.max() - values.min() < 0.08
