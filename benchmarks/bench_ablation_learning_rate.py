"""Ablation: learning-rate schedules for the SGD updates.

The paper uses the hyperbolic Robbins-Monro schedule ``eta_t = 1/(t+1)``.
This ablation compares it against a constant rate and a slower power decay
on the same training workload, reporting the Q1 accuracy of each.
"""

from __future__ import annotations

import numpy as np

from repro.config import ModelConfig, TrainingConfig
from repro.core.model import LLMModel
from repro.eval.experiments import build_context
from repro.eval.reporting import format_table
from repro.metrics.evaluation import evaluate_q1_accuracy

SCHEDULES = (
    ("hyperbolic", 1.0),
    ("constant", 0.1),
    ("power", 1.0),
)


def _run_ablation() -> dict:
    context = build_context(
        "R1",
        dimension=2,
        dataset_size=12_000,
        training_queries=1_500,
        testing_queries=200,
        seed=7,
    )
    results = {}
    for name, scale in SCHEDULES:
        model = LLMModel(
            dimension=2,
            config=ModelConfig(quantization_coefficient=0.05),
            training=TrainingConfig(
                convergence_threshold=1e-4,
                learning_rate_schedule=name,
                learning_rate_scale=scale,
            ),
        )
        model.fit(context.training.pairs)
        report = evaluate_q1_accuracy(model, context.engine, context.testing.queries)
        results[name] = {"rmse": report.rmse, "prototypes": model.prototype_count}
    return results


def test_ablation_learning_rate_schedules(benchmark, record_table):
    results = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    rows = [
        [name, data["prototypes"], data["rmse"]] for name, data in results.items()
    ]
    record_table(
        "ablation_learning_rate",
        format_table(
            ["schedule", "prototypes K", "Q1 RMSE"],
            rows,
            title="Ablation — learning-rate schedules (R1, d=2)",
        ),
    )
    for data in results.values():
        assert np.isfinite(data["rmse"])
    # The paper's hyperbolic schedule should be competitive with the
    # alternatives (within 50% of the best schedule's RMSE).
    best = min(data["rmse"] for data in results.values())
    assert results["hyperbolic"]["rmse"] <= best * 1.5 + 0.02
