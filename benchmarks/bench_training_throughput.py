"""Pipelined training throughput vs the seed per-query training loop.

The paper reports ~99.6% of training wall-clock going to executing the
training queries against the DBMS, which makes the training loop the
dominant system cost.  This benchmark measures, on the Figure-12
scalability setup (R2, d = 2, N = 40,000):

* the **seed per-query loop** — one ``execute_q1`` per training query, a
  per-pair object-path SGD update and a full O(K) convergence recompute
  per step, faithfully replicating the seed ``StreamingTrainer.train``;
* the **per-query loop on today's fused kernel** — same one-query-per-step
  engine traffic, but ``partial_fit`` running through
  :class:`~repro.core.sgd.FusedTrainingKernel` (incremental ``Gamma``);
* the **pipelined trainer** — ``StreamingTrainer.train`` pulling chunks
  through ``execute_q1_batch``, with prefetch off and on, on the single
  segmented engine and on sharded engines at 1 and 2 workers
  (``route="auto"``); and
* the opt-in ``within_chunk="stale-winners"`` mode, together with its
  divergence from the strict default (prototype count and parameter
  deltas), since it trades strict sequencing for fused winner selection.

The headline requirement asserted here: the default bitwise-equivalent
pipelined mode reaches **>= 5x** the seed per-query loop's training
queries/s, and produces a model *identical* to the sequential loop over
the same labelled stream (prototype matrix compared bit-for-bit).

Results are emitted through the ``repro.bench`` harness: a
:class:`~repro.bench.RunRecord` appended to the JSONL results store plus
one ``BENCH_training.json`` artifact.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_training_throughput.py [--smoke]
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bench import BenchmarkSpec
from repro.bench.cli import pytest_entry, script_main
from repro.config import ModelConfig, TrainingConfig
from repro.core.model import LLMModel
from repro.core.sgd import apply_winner_update
from repro.core.training import StreamingTrainer
from repro.data.synthetic import make_rosenbrock_dataset, normalize_dataset
from repro.dbms.executor import ExactQueryEngine
from repro.dbms.sharding import ShardedQueryEngine
from repro.exceptions import EmptySubspaceError
from repro.queries.workload import (
    QueryWorkloadGenerator,
    RadiusDistribution,
    WorkloadSpec,
)

#: Required speedup of the default (bitwise-equivalent) pipelined trainer
#: over the seed per-query training loop on the Figure-12 setup.  The
#: measured value on the reference container is well above this; the gate
#: leaves noise margin for shared runners.
REQUIRED_SPEEDUP = 5.0

#: Quantization coefficient of the benchmark models (the harness default:
#: prototype counts in the paper's regime at laptop-scale workloads).
COEFFICIENT = 0.05

#: Convergence threshold: small enough that no run converges before the
#: stream ends, so every configuration processes the same pair count.
GAMMA = 1e-12


def _make_setup(dataset_size: int, query_count: int, dimension: int, seed: int):
    """Figure-12 setup: normalized Rosenbrock (R2) plus a training workload."""
    dataset = normalize_dataset(
        make_rosenbrock_dataset(dataset_size, dimension=dimension, seed=seed)
    )
    engine = ExactQueryEngine(dataset)
    spec = WorkloadSpec(
        dimension=dimension,
        center_low=0.0,
        center_high=1.0,
        radius=RadiusDistribution(mean=0.1, std=0.025),
    )
    queries = QueryWorkloadGenerator(spec, seed=seed).generate(query_count)
    return dataset, engine, queries


def _fresh_model(dimension: int) -> LLMModel:
    return LLMModel(
        dimension=dimension,
        config=ModelConfig(quantization_coefficient=COEFFICIENT),
        training=TrainingConfig(convergence_threshold=GAMMA),
    )


def _seed_per_query_loop(model: LLMModel, engine, queries) -> dict:
    """Faithful replica of the seed training loop (the benchmark baseline).

    One ``execute_q1`` per query, the object-path winner update
    (``GrowingQuantizer.observe`` + :func:`apply_winner_update`) and a full
    O(K) ``ConvergenceTracker.observe`` recompute per step — exactly the
    work the seed ``StreamingTrainer.train`` performed per pair.
    """
    query_seconds = 0.0
    update_seconds = 0.0
    processed = 0
    skipped = 0
    for query in queries:
        started = time.perf_counter()
        try:
            answer = engine.execute_q1(query).mean
        except EmptySubspaceError:
            query_seconds += time.perf_counter() - started
            skipped += 1
            continue
        executed = time.perf_counter()
        vector = query.to_vector()
        winner_index, grew, _ = model._quantizer.observe(vector, answer=answer)
        if not grew:
            winner = model._quantizer.parameters[winner_index]
            learning_rate = model._schedule(winner.updates)
            apply_winner_update(winner, vector, answer, learning_rate)
        model._steps += 1
        model._fitted = True
        model._tracker.observe(model._quantizer.parameters)
        updated = time.perf_counter()
        query_seconds += executed - started
        update_seconds += updated - executed
        processed += 1
    total = query_seconds + update_seconds
    return {
        "pairs_processed": processed,
        "pairs_skipped": skipped,
        "query_execution_seconds": query_seconds,
        "model_update_seconds": update_seconds,
        "queries_per_second": (processed + skipped) / total if total else 0.0,
        "query_execution_share": query_seconds / total if total else 0.0,
        "prototype_count": model.prototype_count,
    }


def _per_query_incremental_loop(model: LLMModel, engine, queries) -> dict:
    """Per-query engine traffic, but today's fused-kernel ``partial_fit``."""
    breakdown = StreamingTrainer(model, engine).train(queries, batch_size=1)
    return _breakdown_stats(breakdown)


def _pipelined(
    model: LLMModel,
    engine,
    queries,
    *,
    batch_size: int,
    prefetch: bool = False,
    engine_selector=None,
    within_chunk: str = "strict",
) -> dict:
    breakdown = StreamingTrainer(model, engine).train(
        queries,
        batch_size=batch_size,
        prefetch=prefetch,
        engine=engine_selector,
        within_chunk=within_chunk,
    )
    return _breakdown_stats(breakdown)


def _breakdown_stats(breakdown) -> dict:
    consumed = breakdown.pairs_processed + breakdown.pairs_skipped
    total = breakdown.total_seconds
    return {
        "pairs_processed": breakdown.pairs_processed,
        "pairs_skipped": breakdown.pairs_skipped,
        "chunks_executed": breakdown.chunks_executed,
        "query_execution_seconds": breakdown.query_execution_seconds,
        "model_update_seconds": breakdown.model_update_seconds,
        "queries_per_second": consumed / total if total else 0.0,
        "query_execution_share": breakdown.query_execution_share,
        "final_prototype_count": breakdown.final_prototype_count,
    }


def run_training_throughput(
    dataset_size: int = 40_000,
    query_count: int = 4_000,
    seed_loop_queries: int = 600,
    batch_size: int = 1_000,
    *,
    dimension: int = 2,
    worker_counts: tuple[int, ...] = (1, 2),
    seed: int = 7,
) -> dict:
    """Measure seed-loop vs pipelined training throughput and equivalence."""
    dataset, engine, queries = _make_setup(
        dataset_size, query_count, dimension, seed
    )

    # --- seed per-query loop (the baseline) ----------------------------- #
    seed_model = _fresh_model(dimension)
    seed_stats = _seed_per_query_loop(
        seed_model, engine, queries[:seed_loop_queries]
    )

    # --- per-query loop through the fused kernel ------------------------ #
    incremental_model = _fresh_model(dimension)
    incremental_stats = _per_query_incremental_loop(
        incremental_model, engine, queries[:seed_loop_queries]
    )

    # --- equivalence: pipelined default == sequential loop, bit-for-bit - #
    # The sequential reference is the batch_size=1 loop (one
    # execute_q1_batch([q]) call per query): batched Q1 statistics are
    # batch-composition independent, so chunking must change *nothing*.
    # The seed loop labels through the single-query path instead, whose
    # summation order differs at the ulp level — that deviation is the
    # engine-numerics envelope (pinned to 1e-12 by the differential
    # harness), not a property of the training loop, and is reported
    # separately.
    chunked_model = _fresh_model(dimension)
    _pipelined(chunked_model, engine, queries[:seed_loop_queries], batch_size=batch_size)
    prototypes_equal = bool(
        np.array_equal(
            incremental_model.prototype_matrix(), chunked_model.prototype_matrix()
        )
    )
    winners_equal = [
        (record.winner_index, record.grew, record.criterion)
        for record in incremental_model.convergence_tracker.history
    ] == [
        (record.winner_index, record.grew, record.criterion)
        for record in chunked_model.convergence_tracker.history
    ]
    seed_shared = min(seed_model.prototype_count, chunked_model.prototype_count)
    seed_deviation = (
        float(
            np.max(
                np.abs(
                    seed_model.prototype_matrix()[:seed_shared]
                    - chunked_model.prototype_matrix()[:seed_shared]
                )
            )
        )
        if seed_shared
        else 0.0
    )

    # --- pipelined trainer, prefetch off / on --------------------------- #
    # The model of the default run doubles as the strict reference for the
    # stale-winners divergence comparison below (identical configuration).
    strict_reference = _fresh_model(dimension)
    pipelined_stats = _pipelined(
        strict_reference, engine, queries, batch_size=batch_size
    )
    prefetch_stats = _pipelined(
        _fresh_model(dimension),
        engine,
        queries,
        batch_size=batch_size,
        prefetch=True,
    )

    # --- sharded engines (1 vs multi-core), adaptive routing ------------ #
    sharded_stats: dict[str, dict] = {}
    for workers in worker_counts:
        with ShardedQueryEngine(
            dataset, backend="threads", max_workers=workers
        ) as sharded:
            sharded_stats[f"workers={workers}"] = _pipelined(
                _fresh_model(dimension),
                sharded,
                queries,
                batch_size=batch_size,
                engine_selector="auto",
            )

    # --- stale-winners mode, with divergence vs the strict default ------ #
    stale_model = _fresh_model(dimension)
    stale_stats = _pipelined(
        stale_model,
        engine,
        queries,
        batch_size=batch_size,
        within_chunk="stale-winners",
    )
    shared = min(stale_model.prototype_count, strict_reference.prototype_count)
    stale_stats["divergence"] = {
        "prototype_count_strict": strict_reference.prototype_count,
        "prototype_count_stale": stale_model.prototype_count,
        "max_abs_prototype_deviation": float(
            np.max(
                np.abs(
                    stale_model.prototype_matrix()[:shared]
                    - strict_reference.prototype_matrix()[:shared]
                )
            )
        )
        if shared
        else 0.0,
    }

    speedup = (
        pipelined_stats["queries_per_second"] / seed_stats["queries_per_second"]
        if seed_stats["queries_per_second"]
        else 0.0
    )
    return {
        "setup": {
            "dataset": "R2",
            "dimension": dimension,
            "dataset_size": dataset_size,
            "query_count": query_count,
            "seed_loop_queries": seed_loop_queries,
            "batch_size": batch_size,
            "coefficient": COEFFICIENT,
            "cpu_count": os.cpu_count(),
        },
        "seed_loop": seed_stats,
        "per_query_incremental": incremental_stats,
        "pipelined": pipelined_stats,
        "pipelined_prefetch": prefetch_stats,
        "sharded": sharded_stats,
        "stale_winners": stale_stats,
        "equivalence": {
            "prototypes_bitwise_equal": prototypes_equal,
            "criterion_trajectory_equal": winners_equal,
            "seed_loop_prototype_count": seed_model.prototype_count,
            "chunked_prototype_count": chunked_model.prototype_count,
            "seed_loop_max_prototype_deviation": seed_deviation,
        },
        "speedup_vs_seed_loop": speedup,
        "speedup_incremental_loop": (
            pipelined_stats["queries_per_second"]
            / incremental_stats["queries_per_second"]
            if incremental_stats["queries_per_second"]
            else 0.0
        ),
        "required_speedup": REQUIRED_SPEEDUP,
    }


def _format(result: dict) -> str:
    seed_loop = result["seed_loop"]
    incremental = result["per_query_incremental"]
    pipelined = result["pipelined"]
    prefetch = result["pipelined_prefetch"]
    stale = result["stale_winners"]
    lines = [
        "Training throughput (Fig-12 setup: R2, d=2, N="
        f"{result['setup']['dataset_size']:,})",
        f"  batch size:             {result['setup']['batch_size']}",
        f"  cpu count:              {result['setup']['cpu_count']}",
        f"  seed per-query loop:    {seed_loop['queries_per_second']:,.0f} q/s"
        f" (engine share {seed_loop['query_execution_share']:.1%})",
        f"  per-query fused kernel: {incremental['queries_per_second']:,.0f} q/s"
        f" (engine share {incremental['query_execution_share']:.1%})",
        f"  pipelined (default):    {pipelined['queries_per_second']:,.0f} q/s"
        f" (engine share {pipelined['query_execution_share']:.1%})",
        f"  pipelined (prefetch):   {prefetch['queries_per_second']:,.0f} q/s",
    ]
    for label, stats in result["sharded"].items():
        lines.append(
            f"  sharded auto {label}:  {stats['queries_per_second']:,.0f} q/s"
        )
    lines += [
        f"  stale-winners mode:     {stale['queries_per_second']:,.0f} q/s"
        f" (K {stale['divergence']['prototype_count_stale']} vs strict "
        f"{stale['divergence']['prototype_count_strict']})",
        f"  speedup vs seed loop:   {result['speedup_vs_seed_loop']:.1f}x"
        f" (required >= {result['required_speedup']:.0f}x)",
        f"  speedup vs fused loop:  {result['speedup_incremental_loop']:.1f}x",
        f"  bitwise equivalence:    prototypes="
        f"{result['equivalence']['prototypes_bitwise_equal']}, trajectory="
        f"{result['equivalence']['criterion_trajectory_equal']}",
        f"  seed-loop numerics dev: "
        f"{result['equivalence']['seed_loop_max_prototype_deviation']:.2e}"
        " (single-query vs batched engine path)",
    ]
    return "\n".join(lines)


def _check(result: dict) -> list[str]:
    """Return the list of failed headline requirements (empty when green)."""
    failures: list[str] = []
    if result["speedup_vs_seed_loop"] < REQUIRED_SPEEDUP:
        failures.append(
            f"pipelined training speedup {result['speedup_vs_seed_loop']:.1f}x "
            f"is below the required {REQUIRED_SPEEDUP:.0f}x"
        )
    if not result["equivalence"]["prototypes_bitwise_equal"]:
        failures.append(
            "default-mode pipelined training deviates from the sequential loop"
        )
    if not result["equivalence"]["criterion_trajectory_equal"]:
        failures.append(
            "default-mode criterion trajectory deviates from the sequential loop"
        )
    return failures


def _extract(result: dict) -> dict:
    metrics = {
        "seed_loop_qps": result["seed_loop"]["queries_per_second"],
        "incremental_qps": result["per_query_incremental"]["queries_per_second"],
        "pipelined_qps": result["pipelined"]["queries_per_second"],
        "prefetch_qps": result["pipelined_prefetch"]["queries_per_second"],
        "stale_winners_qps": result["stale_winners"]["queries_per_second"],
        "speedup_vs_seed_loop": result["speedup_vs_seed_loop"],
        "speedup_incremental_loop": result["speedup_incremental_loop"],
        "prototypes_bitwise_equal": float(
            result["equivalence"]["prototypes_bitwise_equal"]
        ),
    }
    for label, stats in result["sharded"].items():
        key = label.replace("=", "_")
        metrics[f"sharded_{key}_qps"] = stats["queries_per_second"]
    return metrics


SPEC = BenchmarkSpec(
    name="training_throughput",
    title="Training throughput (Fig-12 setup)",
    artifact="training",
    run=run_training_throughput,
    metrics={
        "seed_loop_qps": "info",
        "incremental_qps": "info",
        "pipelined_qps": "higher",
        "prefetch_qps": "info",
        "stale_winners_qps": "info",
        "speedup_vs_seed_loop": "higher",
        "speedup_incremental_loop": "info",
        "prototypes_bitwise_equal": "info",
        "sharded_workers_1_qps": "info",
        "sharded_workers_2_qps": "info",
    },
    extract=_extract,
    check=lambda result, params: _check(result),
    format=_format,
    default_params={
        "dataset_size": 40_000,
        "query_count": 4_000,
        "seed_loop_queries": 600,
        "batch_size": 1_000,
        "dimension": 2,
        "worker_counts": (1, 2),
        "seed": 7,
    },
    # The dataset stays at the Fig-12 N=40k (the per-query engine cost is
    # what the speedup gate measures); only the workload shrinks.
    smoke_params={"query_count": 1_500, "seed_loop_queries": 300},
)


def test_training_throughput(results_dir, record_table):
    """Benchmark-suite entry point: asserts the headline requirements."""
    pytest_entry(SPEC, results_dir, record_table)


if __name__ == "__main__":
    raise SystemExit(script_main(SPEC))
