"""Figure 3 (Example 1): quantization of 1,000 random 2-D queries.

The paper shows 1,000 queries over ``[-1.5, 1.5]^2`` being quantized into a
handful of prototypes whose centers act as Voronoi sites of the input
space.  The benchmark regenerates the prototype set and checks the
qualitative properties: a coarse vigilance yields few prototypes, a finer
one yields more, and every query center lies close to some prototype.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments import run_prototype_example
from repro.eval.reporting import format_table


def test_fig03_query_prototypes(benchmark, record_table):
    result = benchmark.pedantic(
        run_prototype_example,
        kwargs={"query_count": 1_000, "coefficient": 0.9, "seed": 3},
        rounds=1,
        iterations=1,
    )
    finer = run_prototype_example(query_count=1_000, coefficient=0.4, seed=3)

    rows = [
        [0.9, result["prototype_count"]],
        [0.4, finer["prototype_count"]],
    ]
    record_table(
        "fig03_prototypes",
        format_table(["coefficient a", "prototypes K"], rows,
                     title="Figure 3 — prototypes for 1,000 2-D queries"),
    )

    # Shape: coarse quantization gives a handful of prototypes (paper: 5),
    # finer quantization gives more.
    assert 2 <= result["prototype_count"] <= 20
    assert finer["prototype_count"] > result["prototype_count"]

    # Every prototype center lies inside the queried domain.
    centers = np.asarray(result["prototype_centers"])
    assert centers.min() >= -1.6 and centers.max() <= 1.6
