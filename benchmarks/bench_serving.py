"""Batched hybrid serving throughput vs the seed per-statement exact loop.

The paper's system context (Figure 2) answers analytics queries *from the
trained model* without touching the data.  This benchmark measures the new
serving layer (`repro.dbms.serving.AnalyticsService`) end to end on the
Figure-12 setup (R2, d=2, N=40k, 1,000 statements): SQL parsing included,
statements grouped by table/kind and served through the batched fast
paths, hybrid mode falling back to the exact engine wherever the model has
no overlapping prototypes.

Headline requirements asserted here:

* batched hybrid serving is **>= 10x** the seed-era per-statement exact
  loop (parse one statement, run one ``execute_q1`` / ``execute_q2`` /
  ``cardinality`` against the engine),
* hybrid answers equal the model-direct batch predictions (1e-12) wherever
  the model covers the query, and equal the exact batch answers (1e-12) on
  every fallback,
* an out-of-coverage workload (model trained on half the cube only)
  reports a strictly positive fallback rate, with fallback answers again
  equal to exact.

Results are emitted through the ``repro.bench`` harness: a
:class:`~repro.bench.RunRecord` appended to the JSONL results store plus
one ``BENCH_serving.json`` artifact.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]
"""

from __future__ import annotations

import numpy as np

from repro.bench import BenchmarkSpec
from repro.bench.cli import pytest_entry, script_main
from repro.config import ModelConfig, TrainingConfig
from repro.core.model import LLMModel
from repro.dbms.sqlfront import parse_statement
from repro.eval.experiments import build_context
from repro.eval.timing import measure_throughput

#: Required speedup of batched hybrid serving over the seed exact loop.
REQUIRED_SPEEDUP = 10.0

#: Agreement budget of hybrid answers vs their model/exact references.
DEVIATION_BUDGET = 1e-12

TABLE = "R2"


def _statement_text(kind: str, query) -> str:
    center = ", ".join(repr(float(value)) for value in query.center)
    return f"SELECT {kind} FROM {TABLE} WITHIN {float(query.radius)!r} OF ({center})"


def _build_statements(queries, count: int) -> list[str]:
    """A mixed Q1/Q2/COUNT statement list cycled over the workload queries.

    ``repr`` round-trips floats exactly, so the parsed statements rebuild
    bit-identical query objects — the agreement checks below compare real
    equality, not parse noise.
    """
    statements = []
    for index in range(count):
        query = queries[index % len(queries)]
        if index % 10 == 9:
            kind = "REGRESSION(u)"
        elif index % 20 == 6:
            kind = "COUNT(*)"
        else:
            kind = "AVG(u)"
        statements.append(_statement_text(kind, query))
    return statements


def _seed_statement_loop(engine, statements: list[str]) -> list:
    """The seed-era serving path: parse + one exact engine call per statement."""
    values = []
    for sql in statements:
        statement = parse_statement(sql)
        query = statement.to_query()
        if statement.kind == "q1":
            values.append(engine.execute_q1(query).mean)
        elif statement.kind == "count":
            values.append(engine.cardinality(query))
        else:
            answer = engine.execute_q2(query)
            values.append(np.asarray(answer.coefficients, dtype=float))
    return values


def _verify_hybrid(service, model, engine, statements: list[str]) -> dict:
    """Check hybrid answers against model-direct and exact references."""
    results = service.execute_script(statements, mode="hybrid")
    order = model.config.norm_order
    max_model_dev = 0.0
    max_exact_dev = 0.0
    fallbacks = 0

    model_q1 = [(i, r) for i, r in enumerate(results) if r.kind == "q1" and r.source == "model"]
    if model_q1:
        queries = [r.statement.to_query(order) for _, r in model_q1]
        reference = model.predict_mean_batch(queries)
        served = np.array([r.value for _, r in model_q1])
        max_model_dev = max(max_model_dev, float(np.max(np.abs(served - reference))))

    model_q2 = [r for r in results if r.kind == "q2" and r.source == "model"]
    if model_q2:
        queries = [r.statement.to_query(order) for r in model_q2]
        reference_lists = model.predict_q2_batch(queries)
        for result, planes in zip(model_q2, reference_lists):
            assert len(result.value) == len(planes)
            for (intercept, slope), plane in zip(result.value, planes):
                max_model_dev = max(
                    max_model_dev,
                    abs(intercept - plane.intercept),
                    float(np.max(np.abs(np.asarray(slope) - plane.slope)))
                    if np.size(slope)
                    else 0.0,
                )

    fallback_q1 = [r for r in results if r.kind == "q1" and r.source == "fallback"]
    fallbacks += len(fallback_q1)
    non_empty = [r for r in fallback_q1 if not r.empty]
    if non_empty:
        queries = [r.statement.to_query(order) for r in non_empty]
        answers = engine.execute_q1_batch(queries, on_empty="null")
        for result, answer in zip(non_empty, answers):
            max_exact_dev = max(max_exact_dev, abs(result.value - answer.mean))

    fallback_q2 = [r for r in results if r.kind == "q2" and r.source == "fallback"]
    fallbacks += len(fallback_q2)
    non_empty = [r for r in fallback_q2 if not r.empty]
    if non_empty:
        queries = [r.statement.to_query(order) for r in non_empty]
        answers = engine.execute_q2_batch(queries, on_empty="null")
        for result, answer in zip(non_empty, answers):
            intercept, slope = result.value[0]
            coefficients = np.concatenate([[intercept], np.asarray(slope)])
            max_exact_dev = max(
                max_exact_dev,
                float(np.max(np.abs(coefficients - answer.coefficients))),
            )

    counts = [r for r in results if r.kind == "count"]
    for result in counts:
        reference = engine.cardinality(result.statement.to_query(order))
        if result.value != reference:
            max_exact_dev = max(max_exact_dev, abs(result.value - reference))

    total = len(results)
    return {
        "statements": total,
        "model_answered": sum(r.source == "model" for r in results),
        "fallbacks": fallbacks,
        "counts": len(counts),
        "fallback_rate": fallbacks / total if total else 0.0,
        "max_model_deviation": max_model_dev,
        "max_exact_deviation": max_exact_dev,
    }


def run_serving_benchmark(
    statement_count: int = 1_000,
    dataset_size: int = 40_000,
    training_queries: int = 1_200,
    *,
    dimension: int = 2,
    repetitions: int = 3,
    seed: int = 7,
) -> dict:
    """Measure batched hybrid serving vs the seed loop and verify agreement."""
    context = build_context(
        TABLE,
        dimension=dimension,
        dataset_size=dataset_size,
        training_queries=training_queries,
        testing_queries=50,
        seed=seed,
    )
    model, _ = context.train_model()
    statements = _build_statements(context.training.queries, statement_count)

    # --- seed path: parse + per-statement exact execution ------------------ #
    seed_stats = measure_throughput(
        lambda: _seed_statement_loop(context.engine, statements),
        statement_count,
        repetitions=repetitions,
    )

    # --- serving layer: batched hybrid script execution --------------------- #
    service = context.serving_service(model, table=TABLE)
    hybrid_stats = measure_throughput(
        lambda: service.execute_script(statements, mode="hybrid"),
        statement_count,
        repetitions=repetitions,
    )
    speedup = hybrid_stats["items_per_second"] / seed_stats["items_per_second"]
    service.reset_statistics()
    agreement = _verify_hybrid(service, model, context.engine, statements)
    serving_statistics = service.statistics

    # --- exact serving (no model): the batched lower bound ------------------ #
    exact_service = context.serving_service(table=TABLE)
    exact_stats = measure_throughput(
        lambda: exact_service.execute_script(statements, mode="exact"),
        statement_count,
        repetitions=repetitions,
    )

    # --- out-of-coverage workload: half-cube model, full-cube traffic ------- #
    half_pairs = [
        pair for pair in context.training.pairs if float(pair.query.center[0]) <= 0.5
    ]
    half_model = LLMModel(
        dimension=dimension,
        config=ModelConfig(quantization_coefficient=model.config.quantization_coefficient),
        training=TrainingConfig(convergence_threshold=1e-4),
    )
    half_model.fit(half_pairs)
    half_service = context.serving_service(half_model, table=TABLE)
    half_agreement = _verify_hybrid(
        half_service, half_model, context.engine, statements
    )
    half_statistics = half_service.statistics

    return {
        "setup": {
            "dataset": TABLE,
            "dimension": dimension,
            "dataset_size": dataset_size,
            "training_queries": training_queries,
            "statement_count": statement_count,
            "prototype_count": model.prototype_count,
            "half_model_prototype_count": half_model.prototype_count,
        },
        "seed_loop": {
            "qps": seed_stats["items_per_second"],
            "mean_latency_ms": seed_stats["mean_latency_ms"],
        },
        "hybrid_serving": {
            "qps": hybrid_stats["items_per_second"],
            "mean_latency_ms": hybrid_stats["mean_latency_ms"],
            "speedup": speedup,
            "fallback_rate": serving_statistics.fallback_rate,
            "model_answered": serving_statistics.model_answered,
            "exact_answered": serving_statistics.exact_answered,
            "fallback_count": serving_statistics.fallback_count,
            "max_model_deviation": agreement["max_model_deviation"],
            "max_exact_deviation": agreement["max_exact_deviation"],
            "statistics": serving_statistics.export_metrics(),
        },
        "exact_serving": {
            "qps": exact_stats["items_per_second"],
            "speedup_vs_seed": exact_stats["items_per_second"]
            / seed_stats["items_per_second"],
        },
        "out_of_coverage": {
            "fallback_rate": half_statistics.fallback_rate,
            "fallback_count": half_statistics.fallback_count,
            "max_model_deviation": half_agreement["max_model_deviation"],
            "max_exact_deviation": half_agreement["max_exact_deviation"],
            "statistics": half_statistics.export_metrics(),
        },
        "required_speedup": REQUIRED_SPEEDUP,
        "deviation_budget": DEVIATION_BUDGET,
    }


def _format(result: dict) -> str:
    hybrid = result["hybrid_serving"]
    exact = result["exact_serving"]
    ooc = result["out_of_coverage"]
    return "\n".join(
        [
            "Batched hybrid serving (Fig-12 setup)",
            f"  statements:           {result['setup']['statement_count']}",
            f"  prototypes:           {result['setup']['prototype_count']}",
            f"  seed exact loop:      {result['seed_loop']['qps']:,.0f} stmt/s"
            f" ({result['seed_loop']['mean_latency_ms']:.4f} ms/stmt)",
            f"  hybrid serving:       {hybrid['qps']:,.0f} stmt/s"
            f" ({hybrid['mean_latency_ms']:.4f} ms/stmt)",
            f"  speedup:              {hybrid['speedup']:.1f}x (required >= "
            f"{result['required_speedup']:.0f}x)",
            f"  exact serving:        {exact['qps']:,.0f} stmt/s "
            f"({exact['speedup_vs_seed']:.1f}x vs seed)",
            f"  fallback rate:        {hybrid['fallback_rate']:.3f} "
            f"({hybrid['fallback_count']} of "
            f"{result['setup']['statement_count']})",
            f"  model deviation:      {hybrid['max_model_deviation']:.2e}",
            f"  exact deviation:      {hybrid['max_exact_deviation']:.2e}",
            f"  out-of-coverage rate: {ooc['fallback_rate']:.3f} "
            f"(deviations {ooc['max_model_deviation']:.2e} / "
            f"{ooc['max_exact_deviation']:.2e})",
        ]
    )


def _check(result: dict) -> list[str]:
    """Return the list of failed headline requirements (empty when green)."""
    failures: list[str] = []
    hybrid = result["hybrid_serving"]
    if hybrid["speedup"] < REQUIRED_SPEEDUP:
        failures.append(
            f"hybrid serving speedup {hybrid['speedup']:.1f}x is below the "
            f"required {REQUIRED_SPEEDUP:.0f}x"
        )
    if hybrid["max_model_deviation"] > DEVIATION_BUDGET:
        failures.append(
            "hybrid answers deviate from the model-direct batch predictions"
        )
    if hybrid["max_exact_deviation"] > DEVIATION_BUDGET:
        failures.append("hybrid fallback answers deviate from the exact engine")
    ooc = result["out_of_coverage"]
    if ooc["fallback_rate"] <= 0.0:
        failures.append(
            "the out-of-coverage workload reported no fallbacks (expected > 0)"
        )
    if ooc["max_exact_deviation"] > DEVIATION_BUDGET:
        failures.append(
            "out-of-coverage fallback answers deviate from the exact engine"
        )
    return failures


def _extract(result: dict) -> dict:
    hybrid = result["hybrid_serving"]
    stats = hybrid.get("statistics", {})
    return {
        "seed_qps": result["seed_loop"]["qps"],
        "hybrid_qps": hybrid["qps"],
        "hybrid_speedup": hybrid["speedup"],
        "exact_qps": result["exact_serving"]["qps"],
        "exact_speedup_vs_seed": result["exact_serving"]["speedup_vs_seed"],
        "fallback_rate": hybrid["fallback_rate"],
        "max_model_deviation": hybrid["max_model_deviation"],
        "max_exact_deviation": hybrid["max_exact_deviation"],
        "ooc_fallback_rate": result["out_of_coverage"]["fallback_rate"],
        "p50_seconds": stats.get("p50_seconds", 0.0),
        "p99_seconds": stats.get("p99_seconds", 0.0),
    }


SPEC = BenchmarkSpec(
    name="serving",
    title="Batched hybrid serving (Fig-12 setup)",
    artifact="serving",
    run=run_serving_benchmark,
    metrics={
        "seed_qps": "info",
        "hybrid_qps": "higher",
        "hybrid_speedup": "higher",
        "exact_qps": "higher",
        "exact_speedup_vs_seed": "info",
        "fallback_rate": "info",
        "max_model_deviation": "info",
        "max_exact_deviation": "info",
        "ooc_fallback_rate": "info",
        "p50_seconds": "info",
        "p99_seconds": "info",
    },
    extract=_extract,
    check=lambda result, params: _check(result),
    format=_format,
    default_params={
        "statement_count": 1_000,
        "dataset_size": 40_000,
        "training_queries": 1_200,
        "dimension": 2,
        "repetitions": 3,
        "seed": 7,
    },
    smoke_params={
        "statement_count": 300,
        "training_queries": 800,
        "repetitions": 2,
    },
)


def test_serving_benchmark(results_dir, record_table):
    """Benchmark-suite entry point: asserts the headline requirements."""
    pytest_entry(SPEC, results_dir, record_table)


if __name__ == "__main__":
    raise SystemExit(script_main(SPEC))
