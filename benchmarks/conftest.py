"""Shared fixtures for the benchmark harness.

Every benchmark regenerates the series plotted by one figure of the paper
and records it under ``benchmarks/results/`` so the numbers can be compared
against the paper (see EXPERIMENTS.md).  The pytest-benchmark timings
measure either the experiment runtime (run exactly once via
``benchmark.pedantic``) or, for the query-processing benchmarks, the
per-query latency itself.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    """Return a callable that persists a formatted result table."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        # Also echo to stdout so `pytest -s` shows the series inline.
        print(f"\n[{name}]\n{text}")

    return _record
