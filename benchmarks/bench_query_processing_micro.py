"""Micro-benchmarks of the query-processing paths.

These measure the raw per-call latency of the operations the paper's
efficiency claims rest on:

* Q1 prediction from the trained model (Algorithm 2),
* Q2 local-model retrieval from the trained model (Algorithm 3),
* data-value prediction (Equation 14),
* exact Q1 execution over the engine (indexed and full-scan),
* exact Q2 execution (selection + OLS) over the engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dbms.executor import ExactQueryEngine
from repro.eval.experiments import build_context


@pytest.fixture(scope="module")
def setup():
    context = build_context(
        "R2",
        dimension=2,
        dataset_size=60_000,
        training_queries=1_000,
        testing_queries=50,
        seed=3,
    )
    model, _ = context.train_model()
    query = context.testing.queries[0]
    return context, model, query


def test_model_q1_prediction_latency(setup, benchmark):
    _, model, query = setup
    result = benchmark(model.predict_mean, query)
    assert np.isfinite(result)


def test_model_q2_local_models_latency(setup, benchmark):
    _, model, query = setup
    planes = benchmark(model.regression_models, query)
    assert len(planes) >= 1


def test_model_value_prediction_latency(setup, benchmark):
    context, model, query = setup
    point = query.center
    value = benchmark(model.predict_value, point, query.radius)
    assert np.isfinite(value)


def test_exact_q1_latency_indexed(setup, benchmark):
    context, _, query = setup
    answer = benchmark(context.engine.execute_q1, query)
    assert answer.cardinality > 0


def test_exact_q1_latency_full_scan(setup, benchmark):
    context, _, query = setup
    scan_engine = ExactQueryEngine(context.dataset, use_index=False)
    answer = benchmark(scan_engine.execute_q1, query)
    assert answer.cardinality > 0


def test_exact_q2_latency(setup, benchmark):
    context, _, query = setup
    answer = benchmark(context.engine.execute_q2, query)
    assert answer.coefficients is not None
