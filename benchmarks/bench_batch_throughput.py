"""Batch query-processing throughput vs the per-query loops.

The paper's headline efficiency claim is per-query; a heavy-traffic
deployment additionally wants *batch* throughput.  This benchmark measures,
on the Figure-12 scalability setup:

* Q1 prediction throughput of the vectorised batch engine
  (``LLMModel.predict_mean_batch``) against the per-query Python loop,
* Q2 prediction (``predict_q2_batch``) and data-value prediction
  (``predict_value_batch``) against their loops,
* the batched exact executor (``execute_q1_batch`` / ``execute_q2_batch``,
  the segmented cell-aggregate pipeline) against its per-query loops,

and asserts the headline requirements: **>= 10x** Q1 prediction throughput
and **>= 4x** exact Q2 throughput at batch size 1,000 (the measured exact-Q2
speedup on the reference container is ~5x; the gate leaves noise margin).

Results are emitted through the ``repro.bench`` harness: a
:class:`~repro.bench.RunRecord` appended to the JSONL results store plus
one ``BENCH_batch.json`` artifact.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py [--smoke]
"""

from __future__ import annotations

import numpy as np

from repro.bench import BenchmarkSpec
from repro.bench.cli import pytest_entry, script_main
from repro.eval.experiments import build_context
from repro.eval.timing import measure_throughput

#: Required speedup of batch Q1 prediction over the per-query loop.
REQUIRED_SPEEDUP = 10.0

#: Required speedup of the batched exact Q2 executor over its loop.  The
#: measured value on the reference container is ~5x at batch 1,000; the
#: gate sits below it to absorb scheduler noise on shared runners.
REQUIRED_EXACT_Q2_SPEEDUP = 4.0


def run_batch_throughput(
    batch_size: int = 1_000,
    dataset_size: int = 40_000,
    training_queries: int = 1_200,
    *,
    dataset_name: str = "R2",
    dimension: int = 2,
    repetitions: int = 3,
    exact_queries: int | None = None,
    seed: int = 7,
) -> dict:
    """Measure batch vs per-query throughput and verify numerical agreement."""
    context = build_context(
        dataset_name,
        dimension=dimension,
        dataset_size=dataset_size,
        training_queries=training_queries,
        testing_queries=50,
        seed=seed,
    )
    model, _ = context.train_model()
    generator_queries = context.training.queries
    # Cycle the labelled workload up to the requested batch size.
    queries = [
        generator_queries[index % len(generator_queries)]
        for index in range(batch_size)
    ]
    matrix = np.vstack([query.to_vector() for query in queries])
    points = matrix[:, :-1]
    probe_radius = model.average_prototype_radius()

    # --- model Q1 prediction: loop vs batch -------------------------------- #
    def _loop() -> list[float]:
        return [model.predict_mean(query) for query in queries]

    loop_stats = measure_throughput(_loop, batch_size, repetitions=repetitions)
    batch_stats = measure_throughput(
        lambda: model.predict_mean_batch(matrix), batch_size, repetitions=repetitions
    )
    speedup = batch_stats["items_per_second"] / loop_stats["items_per_second"]

    loop_answers = np.asarray(_loop())
    batch_answers = model.predict_mean_batch(matrix)
    max_deviation = float(np.max(np.abs(loop_answers - batch_answers)))

    # --- model Q2 prediction: loop vs batch -------------------------------- #
    q2_queries = queries[: min(300, batch_size)]

    def _q2_loop() -> None:
        for query in q2_queries:
            model.regression_models(query)

    q2_loop = measure_throughput(_q2_loop, len(q2_queries), repetitions=repetitions)
    q2_batch = measure_throughput(
        lambda: model.predict_q2_batch(q2_queries),
        len(q2_queries),
        repetitions=repetitions,
    )

    # --- model value prediction: loop vs batch ----------------------------- #
    value_points = points[: min(300, batch_size)]

    def _value_loop() -> None:
        for point in value_points:
            model.predict_value(point, probe_radius)

    value_loop = measure_throughput(
        _value_loop, len(value_points), repetitions=repetitions
    )
    value_batch = measure_throughput(
        lambda: model.predict_value_batch(value_points, probe_radius),
        len(value_points),
        repetitions=repetitions,
    )
    value_dev = float(
        np.max(
            np.abs(
                model.predict_value_batch(value_points, probe_radius)
                - np.array(
                    [model.predict_value(point, probe_radius) for point in value_points]
                )
            )
        )
    )

    # --- exact executor: loops vs batches ---------------------------------- #
    exact_batch_queries = queries[: (exact_queries or batch_size)]
    exact_loop_queries = exact_batch_queries[: min(250, len(exact_batch_queries))]

    def _exact_loop() -> None:
        for query in exact_loop_queries:
            context.engine.execute_q1(query)

    exact_loop = measure_throughput(
        _exact_loop, len(exact_loop_queries), repetitions=repetitions
    )
    exact_batch = measure_throughput(
        lambda: context.engine.execute_q1_batch(exact_batch_queries, on_empty="null"),
        len(exact_batch_queries),
        repetitions=repetitions,
    )

    def _exact_q2_loop() -> None:
        for query in exact_loop_queries:
            context.engine.execute_q2(query)

    exact_q2_loop = measure_throughput(
        _exact_q2_loop, len(exact_loop_queries), repetitions=repetitions
    )
    exact_q2_batch = measure_throughput(
        lambda: context.engine.execute_q2_batch(exact_batch_queries, on_empty="null"),
        len(exact_batch_queries),
        repetitions=repetitions,
    )
    q2_answers = context.engine.execute_q2_batch(exact_loop_queries, on_empty="null")
    q2_dev = 0.0
    for query, answer in zip(exact_loop_queries, q2_answers):
        reference = context.engine.execute_q2(query)
        q2_dev = max(
            q2_dev,
            abs(answer.mean - reference.mean),
            float(np.max(np.abs(answer.coefficients - reference.coefficients))),
        )

    return {
        "setup": {
            "dataset": dataset_name,
            "dimension": dimension,
            "dataset_size": dataset_size,
            "training_queries": training_queries,
            "batch_size": batch_size,
            "prototype_count": model.prototype_count,
        },
        "q1_prediction": {
            "loop_qps": loop_stats["items_per_second"],
            "batch_qps": batch_stats["items_per_second"],
            "loop_mean_latency_ms": loop_stats["mean_latency_ms"],
            "batch_mean_latency_ms": batch_stats["mean_latency_ms"],
            "speedup": speedup,
            "max_abs_deviation": max_deviation,
        },
        "q2_prediction": {
            "loop_qps": q2_loop["items_per_second"],
            "batch_qps": q2_batch["items_per_second"],
            "speedup": q2_batch["items_per_second"] / q2_loop["items_per_second"],
        },
        "value_prediction": {
            "loop_qps": value_loop["items_per_second"],
            "batch_qps": value_batch["items_per_second"],
            "speedup": value_batch["items_per_second"]
            / value_loop["items_per_second"],
            "max_abs_deviation": value_dev,
        },
        "exact_q1_execution": {
            "loop_qps": exact_loop["items_per_second"],
            "batch_qps": exact_batch["items_per_second"],
            "speedup": exact_batch["items_per_second"]
            / exact_loop["items_per_second"],
        },
        "exact_q2_execution": {
            "loop_qps": exact_q2_loop["items_per_second"],
            "batch_qps": exact_q2_batch["items_per_second"],
            "speedup": exact_q2_batch["items_per_second"]
            / exact_q2_loop["items_per_second"],
            "max_abs_deviation": q2_dev,
        },
        "required_speedup": REQUIRED_SPEEDUP,
        "required_exact_q2_speedup": REQUIRED_EXACT_Q2_SPEEDUP,
    }


def _format(result: dict) -> str:
    q1 = result["q1_prediction"]
    q2 = result["q2_prediction"]
    value = result["value_prediction"]
    exact = result["exact_q1_execution"]
    exact_q2 = result["exact_q2_execution"]
    lines = [
        "Batch query-processing throughput (Fig-12 setup)",
        f"  prototypes:           {result['setup']['prototype_count']}",
        f"  batch size:           {result['setup']['batch_size']}",
        f"  Q1 loop:              {q1['loop_qps']:,.0f} q/s"
        f" ({q1['loop_mean_latency_ms']:.4f} ms/q)",
        f"  Q1 batch:             {q1['batch_qps']:,.0f} q/s"
        f" ({q1['batch_mean_latency_ms']:.4f} ms/q)",
        f"  Q1 speedup:           {q1['speedup']:.1f}x (required >= "
        f"{result['required_speedup']:.0f}x)",
        f"  Q1 max deviation:     {q1['max_abs_deviation']:.2e}",
        f"  Q2 prediction:        {q2['loop_qps']:,.0f} -> {q2['batch_qps']:,.0f} q/s"
        f" ({q2['speedup']:.1f}x)",
        f"  value prediction:     {value['loop_qps']:,.0f} -> "
        f"{value['batch_qps']:,.0f} q/s ({value['speedup']:.1f}x)",
        f"  exact Q1:             {exact['loop_qps']:,.0f} -> "
        f"{exact['batch_qps']:,.0f} q/s ({exact['speedup']:.1f}x)",
        f"  exact Q2:             {exact_q2['loop_qps']:,.0f} -> "
        f"{exact_q2['batch_qps']:,.0f} q/s ({exact_q2['speedup']:.1f}x, "
        f"required >= {result['required_exact_q2_speedup']:.0f}x)",
        f"  exact Q2 deviation:   {exact_q2['max_abs_deviation']:.2e}",
    ]
    return "\n".join(lines)


def _check(result: dict) -> list[str]:
    """Return the list of failed headline requirements (empty when green)."""
    failures: list[str] = []
    q1 = result["q1_prediction"]
    if q1["speedup"] < REQUIRED_SPEEDUP:
        failures.append(
            f"Q1 batch speedup {q1['speedup']:.1f}x is below the required "
            f"{REQUIRED_SPEEDUP:.0f}x"
        )
    if q1["max_abs_deviation"] > 1e-9:
        failures.append("Q1 batch answers deviate from the per-query loop")
    exact_q2 = result["exact_q2_execution"]
    if exact_q2["speedup"] < REQUIRED_EXACT_Q2_SPEEDUP:
        failures.append(
            f"exact Q2 batch speedup {exact_q2['speedup']:.1f}x is below the "
            f"required {REQUIRED_EXACT_Q2_SPEEDUP:.0f}x"
        )
    if exact_q2["max_abs_deviation"] > 1e-9:
        failures.append("exact Q2 batch answers deviate from the per-query loop")
    if result["value_prediction"]["max_abs_deviation"] > 1e-9:
        failures.append("value-prediction batch answers deviate from the loop")
    return failures


def _extract(result: dict) -> dict:
    return {
        "q1_loop_qps": result["q1_prediction"]["loop_qps"],
        "q1_batch_qps": result["q1_prediction"]["batch_qps"],
        "q1_speedup": result["q1_prediction"]["speedup"],
        "q2_batch_qps": result["q2_prediction"]["batch_qps"],
        "value_batch_qps": result["value_prediction"]["batch_qps"],
        "exact_q1_batch_qps": result["exact_q1_execution"]["batch_qps"],
        "exact_q2_batch_qps": result["exact_q2_execution"]["batch_qps"],
        "exact_q2_speedup": result["exact_q2_execution"]["speedup"],
        "q1_max_deviation": result["q1_prediction"]["max_abs_deviation"],
        "exact_q2_max_deviation": result["exact_q2_execution"]["max_abs_deviation"],
        "value_max_deviation": result["value_prediction"]["max_abs_deviation"],
    }


SPEC = BenchmarkSpec(
    name="batch_throughput",
    title="Batch query-processing throughput (Fig-12 setup)",
    artifact="batch",
    run=run_batch_throughput,
    metrics={
        "q1_loop_qps": "info",
        "q1_batch_qps": "higher",
        "q1_speedup": "higher",
        "q2_batch_qps": "higher",
        "value_batch_qps": "higher",
        "exact_q1_batch_qps": "higher",
        "exact_q2_batch_qps": "higher",
        "exact_q2_speedup": "higher",
        "q1_max_deviation": "info",
        "exact_q2_max_deviation": "info",
        "value_max_deviation": "info",
    },
    extract=_extract,
    check=lambda result, params: _check(result),
    format=_format,
    default_params={
        "batch_size": 1_000,
        "dataset_size": 40_000,
        "training_queries": 1_200,
        "dataset_name": "R2",
        "dimension": 2,
        "repetitions": 3,
        "exact_queries": None,
        "seed": 7,
    },
    smoke_params={
        "dataset_size": 10_000,
        "training_queries": 600,
        "exact_queries": 400,
    },
)


def test_batch_throughput(results_dir, record_table):
    """Benchmark-suite entry point: asserts the headline requirements."""
    pytest_entry(SPEC, results_dir, record_table)


if __name__ == "__main__":
    raise SystemExit(script_main(SPEC))
