"""Batch query-processing throughput vs the per-query loop.

The paper's headline efficiency claim is per-query; a heavy-traffic
deployment additionally wants *batch* throughput.  This benchmark measures
Q1 prediction throughput of the vectorised batch engine
(``LLMModel.predict_mean_batch``) against the per-query Python loop on the
Figure-12 scalability setup, plus the batched exact executor
(``ExactQueryEngine.execute_q1_batch``) against its per-query loop, and
asserts the headline requirement: **>= 10x** prediction throughput at batch
size 1,000.

The results are written to ``BENCH_batch.json`` so CI runs accumulate a
performance trajectory.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.eval.experiments import build_context
from repro.eval.timing import measure_throughput

#: Required speedup of batch prediction over the per-query loop.
REQUIRED_SPEEDUP = 10.0


def run_batch_throughput(
    batch_size: int = 1_000,
    dataset_size: int = 40_000,
    training_queries: int = 800,
    *,
    dataset_name: str = "R2",
    dimension: int = 2,
    repetitions: int = 3,
    seed: int = 7,
) -> dict:
    """Measure batch vs per-query throughput and verify numerical agreement."""
    context = build_context(
        dataset_name,
        dimension=dimension,
        dataset_size=dataset_size,
        training_queries=training_queries,
        testing_queries=50,
        seed=seed,
    )
    model, _ = context.train_model()
    generator_queries = context.training.queries
    # Cycle the labelled workload up to the requested batch size.
    queries = [
        generator_queries[index % len(generator_queries)]
        for index in range(batch_size)
    ]
    matrix = np.vstack([query.to_vector() for query in queries])

    # --- model Q1 prediction: loop vs batch -------------------------------- #
    def _loop() -> list[float]:
        return [model.predict_mean(query) for query in queries]

    loop_stats = measure_throughput(_loop, batch_size, repetitions=repetitions)
    batch_stats = measure_throughput(
        lambda: model.predict_mean_batch(matrix), batch_size, repetitions=repetitions
    )
    speedup = batch_stats["items_per_second"] / loop_stats["items_per_second"]

    loop_answers = np.asarray(_loop())
    batch_answers = model.predict_mean_batch(matrix)
    max_deviation = float(np.max(np.abs(loop_answers - batch_answers)))

    # --- exact executor: loop vs batch ------------------------------------- #
    exact_queries = queries[: min(200, batch_size)]

    def _exact_loop() -> None:
        for query in exact_queries:
            context.engine.execute_q1(query)

    exact_loop = measure_throughput(
        _exact_loop, len(exact_queries), repetitions=repetitions
    )
    exact_batch = measure_throughput(
        lambda: context.engine.execute_q1_batch(exact_queries),
        len(exact_queries),
        repetitions=repetitions,
    )

    return {
        "setup": {
            "dataset": dataset_name,
            "dimension": dimension,
            "dataset_size": dataset_size,
            "training_queries": training_queries,
            "batch_size": batch_size,
            "prototype_count": model.prototype_count,
        },
        "q1_prediction": {
            "loop_qps": loop_stats["items_per_second"],
            "batch_qps": batch_stats["items_per_second"],
            "loop_mean_latency_ms": loop_stats["mean_latency_ms"],
            "batch_mean_latency_ms": batch_stats["mean_latency_ms"],
            "speedup": speedup,
            "max_abs_deviation": max_deviation,
        },
        "exact_q1_execution": {
            "loop_qps": exact_loop["items_per_second"],
            "batch_qps": exact_batch["items_per_second"],
            "speedup": exact_batch["items_per_second"]
            / exact_loop["items_per_second"],
        },
        "required_speedup": REQUIRED_SPEEDUP,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def _format(result: dict) -> str:
    q1 = result["q1_prediction"]
    exact = result["exact_q1_execution"]
    lines = [
        "Batch query-processing throughput (Fig-12 setup)",
        f"  prototypes:           {result['setup']['prototype_count']}",
        f"  batch size:           {result['setup']['batch_size']}",
        f"  Q1 loop:              {q1['loop_qps']:,.0f} q/s"
        f" ({q1['loop_mean_latency_ms']:.4f} ms/q)",
        f"  Q1 batch:             {q1['batch_qps']:,.0f} q/s"
        f" ({q1['batch_mean_latency_ms']:.4f} ms/q)",
        f"  Q1 speedup:           {q1['speedup']:.1f}x (required >= "
        f"{result['required_speedup']:.0f}x)",
        f"  Q1 max deviation:     {q1['max_abs_deviation']:.2e}",
        f"  exact loop:           {exact['loop_qps']:,.0f} q/s",
        f"  exact batch:          {exact['batch_qps']:,.0f} q/s"
        f" ({exact['speedup']:.1f}x)",
    ]
    return "\n".join(lines)


def test_batch_throughput(results_dir, record_table):
    """Benchmark-suite entry point: asserts the >= 10x headline."""
    result = run_batch_throughput()
    record_table("bench_batch_throughput", _format(result))
    (results_dir / "BENCH_batch.json").write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    assert result["q1_prediction"]["speedup"] >= REQUIRED_SPEEDUP
    assert result["q1_prediction"]["max_abs_deviation"] <= 1e-9


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, fast configuration for CI smoke runs",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_batch.json"),
        help="where to write the JSON results (default: ./BENCH_batch.json)",
    )
    args = parser.parse_args()
    if args.smoke:
        result = run_batch_throughput(
            batch_size=1_000, dataset_size=10_000, training_queries=400
        )
    else:
        result = run_batch_throughput()
    print(_format(result))
    args.output.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.output}")
    if result["q1_prediction"]["speedup"] < REQUIRED_SPEEDUP:
        print(
            f"FAIL: batch speedup {result['q1_prediction']['speedup']:.1f}x is "
            f"below the required {REQUIRED_SPEEDUP:.0f}x"
        )
        return 1
    if result["q1_prediction"]["max_abs_deviation"] > 1e-9:
        print("FAIL: batch answers deviate from the per-query loop")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
