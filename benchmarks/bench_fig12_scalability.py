"""Figure 12: query execution time vs dataset size (the headline result).

The paper reports that LLM query processing time is flat in the dataset
size (it never touches the data) and sub-millisecond, while exact REG and
PLR execution grows with the data and is orders of magnitude slower.  This
benchmark regenerates both panels (Q1 and Q2 latency vs N) and additionally
uses pytest-benchmark to measure the per-query latency of the trained model
directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import build_context, run_scalability_experiment
from repro.eval.reporting import format_series_table

DATASET_SIZES = (10_000, 40_000, 160_000)


@pytest.fixture(scope="module")
def scalability_result():
    return run_scalability_experiment(
        dataset_sizes=DATASET_SIZES,
        dimension=2,
        training_queries=800,
        measured_queries=30,
        seed=7,
    )


def test_fig12_latency_vs_dataset_size(scalability_result, benchmark, record_table):
    result = scalability_result
    q1 = format_series_table(
        "rows",
        result["dataset_sizes"],
        {
            "LLM (ms)": result["q1_latency_ms"]["llm"],
            "exact REG (ms)": result["q1_latency_ms"]["exact_reg"],
        },
        title="Figure 12 (left) — Q1 latency vs dataset size",
    )
    q2 = format_series_table(
        "rows",
        result["dataset_sizes"],
        {
            "LLM (ms)": result["q2_latency_ms"]["llm"],
            "exact REG (ms)": result["q2_latency_ms"]["exact_reg"],
            "PLR (ms)": result["q2_latency_ms"]["plr"],
        },
        title="Figure 12 (right) — Q2 latency vs dataset size",
    )
    record_table("fig12_scalability", q1 + "\n\n" + q2)

    llm_q1 = np.asarray(result["q1_latency_ms"]["llm"])
    exact_q1 = np.asarray(result["q1_latency_ms"]["exact_reg"])
    llm_q2 = np.asarray(result["q2_latency_ms"]["llm"])
    exact_q2 = np.asarray(result["q2_latency_ms"]["exact_reg"])
    plr_q2 = np.asarray(result["q2_latency_ms"]["plr"])

    # Shape: at the largest dataset the model is much faster than exact
    # execution for both query types, and PLR is the slowest Q2 method.
    assert llm_q1[-1] < exact_q1[-1] / 3.0
    assert llm_q2[-1] < exact_q2[-1] / 3.0
    assert plr_q2[-1] > exact_q2[-1]
    # Shape: LLM latency is flat in N (bounded variation across sizes) while
    # exact execution grows from the smallest to the largest dataset.
    assert llm_q1.max() < 10 * max(llm_q1.min(), 1e-6)
    assert exact_q1[-1] > exact_q1[0]

    # Timer-based measurement of the trained model's Q1 latency (largest N).
    context = build_context(
        "R2",
        dimension=2,
        dataset_size=DATASET_SIZES[-1],
        training_queries=400,
        testing_queries=40,
        seed=11,
    )
    model, _ = context.train_model()
    query = context.testing.queries[0]
    benchmark(model.predict_mean, query)
