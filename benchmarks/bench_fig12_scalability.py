"""Figure 12: query execution time vs dataset size (the headline result).

The paper reports that LLM query processing time is flat in the dataset
size (it never touches the data) and sub-millisecond, while exact REG and
PLR execution grows with the data and is orders of magnitude slower.
This replication regenerates both panels (Q1 and Q2 latency vs N) through
:func:`~repro.eval.experiments.run_scalability_experiment` and gates the
figure's shape: the model beats exact execution by a wide margin at the
largest N, PLR is the slowest Q2 method, and model latency stays flat
while exact latency grows.

Results are emitted through the ``repro.bench`` harness: a
:class:`~repro.bench.RunRecord` appended to the JSONL results store plus
one ``BENCH_fig12.json`` artifact.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_fig12_scalability.py [--smoke]
"""

from __future__ import annotations

import numpy as np

from repro.bench import BenchmarkSpec
from repro.bench.cli import pytest_entry, script_main
from repro.eval.experiments import run_scalability_experiment
from repro.eval.reporting import format_series_table

DATASET_SIZES = (10_000, 40_000, 160_000)

#: The model must be at least this many times faster than exact REG at
#: the largest dataset size (Figure 12 reports orders of magnitude).
SPEEDUP_FLOOR = 3.0

#: Flatness bound: model latency across all sizes stays within this
#: factor of its own minimum (it never touches the data).
FLATNESS_FACTOR = 10.0


def run_fig12(
    dataset_sizes: tuple = DATASET_SIZES,
    dimension: int = 2,
    training_queries: int = 800,
    measured_queries: int = 30,
    *,
    seed: int = 7,
) -> dict:
    """Regenerate both Figure 12 panels; keep the raw latency series."""
    result = run_scalability_experiment(
        dataset_sizes=tuple(dataset_sizes),
        dimension=dimension,
        training_queries=training_queries,
        measured_queries=measured_queries,
        seed=seed,
    )
    result["setup"] = {
        "dataset_sizes": list(dataset_sizes),
        "dimension": dimension,
        "training_queries": training_queries,
        "measured_queries": measured_queries,
    }
    return result


def _series(result: dict) -> dict:
    return {
        "llm_q1": np.asarray(result["q1_latency_ms"]["llm"], dtype=float),
        "exact_q1": np.asarray(
            result["q1_latency_ms"]["exact_reg"], dtype=float
        ),
        "llm_q2": np.asarray(result["q2_latency_ms"]["llm"], dtype=float),
        "exact_q2": np.asarray(
            result["q2_latency_ms"]["exact_reg"], dtype=float
        ),
        "plr_q2": np.asarray(result["q2_latency_ms"]["plr"], dtype=float),
    }


def _check(result: dict, params: dict) -> list[str]:
    """Gate the figure's shape; return failed gates (empty when green)."""
    series = _series(result)
    failures: list[str] = []
    for name, values in series.items():
        if not np.all(np.isfinite(values)):
            failures.append(f"{name}: non-finite latency in the sweep")
            return failures
    for panel in ("q1", "q2"):
        llm, exact = series[f"llm_{panel}"], series[f"exact_{panel}"]
        if not llm[-1] < exact[-1] / SPEEDUP_FLOOR:
            failures.append(
                f"{panel.upper()}: model latency {llm[-1]:.3f} ms is not"
                f" {SPEEDUP_FLOOR:.0f}x under exact {exact[-1]:.3f} ms at"
                " the largest N"
            )
    if not series["plr_q2"][-1] > series["exact_q2"][-1]:
        failures.append(
            "Q2: PLR is not the slowest method at the largest N"
        )
    llm_q1 = series["llm_q1"]
    if not llm_q1.max() < FLATNESS_FACTOR * max(llm_q1.min(), 1e-6):
        failures.append(
            f"Q1: model latency is not flat in N ({llm_q1.min():.4f} .."
            f" {llm_q1.max():.4f} ms)"
        )
    exact_q1 = series["exact_q1"]
    if len(exact_q1) > 1 and not exact_q1[-1] > exact_q1[0]:
        failures.append(
            "Q1: exact latency did not grow from the smallest to the"
            " largest dataset"
        )
    return failures


def _extract(result: dict) -> dict:
    series = _series(result)
    return {
        "llm_q1_ms_largest": float(series["llm_q1"][-1]),
        "exact_q1_ms_largest": float(series["exact_q1"][-1]),
        "llm_q2_ms_largest": float(series["llm_q2"][-1]),
        "exact_q2_ms_largest": float(series["exact_q2"][-1]),
        "plr_q2_ms_largest": float(series["plr_q2"][-1]),
        "q1_speedup_largest": float(
            series["exact_q1"][-1] / max(series["llm_q1"][-1], 1e-9)
        ),
        "q2_speedup_largest": float(
            series["exact_q2"][-1] / max(series["llm_q2"][-1], 1e-9)
        ),
    }


def _format(result: dict) -> str:
    q1 = format_series_table(
        "rows",
        result["dataset_sizes"],
        {
            "LLM (ms)": result["q1_latency_ms"]["llm"],
            "exact REG (ms)": result["q1_latency_ms"]["exact_reg"],
        },
        title="Figure 12 (left) — Q1 latency vs dataset size",
    )
    q2 = format_series_table(
        "rows",
        result["dataset_sizes"],
        {
            "LLM (ms)": result["q2_latency_ms"]["llm"],
            "exact REG (ms)": result["q2_latency_ms"]["exact_reg"],
            "PLR (ms)": result["q2_latency_ms"]["plr"],
        },
        title="Figure 12 (right) — Q2 latency vs dataset size",
    )
    return q1 + "\n\n" + q2


SPEC = BenchmarkSpec(
    name="fig12",
    title="Figure 12 — query latency vs dataset size",
    artifact="fig12",
    run=run_fig12,
    # Absolute latencies vary with the host; the speedups are the
    # figure's claim and gate the trajectory.
    metrics={
        "llm_q1_ms_largest": "lower",
        "exact_q1_ms_largest": "info",
        "llm_q2_ms_largest": "lower",
        "exact_q2_ms_largest": "info",
        "plr_q2_ms_largest": "info",
        "q1_speedup_largest": "higher",
        "q2_speedup_largest": "higher",
    },
    extract=_extract,
    check=_check,
    format=_format,
    default_params={
        "dataset_sizes": DATASET_SIZES,
        "dimension": 2,
        "training_queries": 800,
        "measured_queries": 30,
        "seed": 7,
    },
    smoke_params={
        "dataset_sizes": (5_000, 20_000),
        "training_queries": 250,
        "measured_queries": 10,
    },
)


def test_fig12_benchmark(results_dir, record_table):
    """Benchmark-suite entry point: asserts the figure-shape gates."""
    pytest_entry(SPEC, results_dir, record_table)


if __name__ == "__main__":
    raise SystemExit(script_main(SPEC))
