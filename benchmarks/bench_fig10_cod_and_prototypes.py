"""Figure 10: coefficient of determination vs K, and K vs coefficient a.

Left plot of the paper: with enough prototypes the LLM reaches a high,
positive R² over random analyst subspaces, better than the single REG plane
(which can even go negative), approaching PLR.  Right plot: the number of
prototypes K grows as the quantization coefficient a shrinks.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments import run_cod_vs_prototypes
from repro.eval.reporting import format_series_table

COEFFICIENTS = (0.9, 0.5, 0.25, 0.1, 0.05)


def test_fig10_cod_and_prototype_counts(benchmark, record_table):
    result = benchmark.pedantic(
        run_cod_vs_prototypes,
        kwargs={
            "dataset_name": "R1",
            "dimensions": (2, 5),
            "coefficients": COEFFICIENTS,
            "dataset_size": 12_000,
            "training_queries": 1_500,
            "testing_queries": 12,
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )

    tables = []
    for dimension, series in result["by_dimension"].items():
        tables.append(
            format_series_table(
                "a",
                series["coefficients"],
                {
                    "K": series["prototypes"],
                    "LLM R2": series["llm_cod"],
                    "REG R2": series["reg_cod"],
                    "PLR R2": series["plr_cod"],
                },
                title=f"Figure 10 — K and R² vs a (R1, {dimension})",
            )
        )
    record_table("fig10_cod_and_prototypes", "\n\n".join(tables))

    for dimension, series in result["by_dimension"].items():
        prototypes = np.asarray(series["prototypes"])
        llm_cod = np.asarray(series["llm_cod"])
        reg_cod = np.asarray(series["reg_cod"])
        # Right plot shape: K is non-increasing in a, i.e. increasing along
        # our (decreasing-a) sweep order.
        assert np.all(np.diff(prototypes) >= 0)
        # Left plot shape: with the largest K the LLM achieves a positive R²,
        # and its R² improves as K grows.
        assert llm_cod[-1] > 0.0
        assert llm_cod[-1] > llm_cod[0]
        if dimension == "d=2":
            # The paper's ordering (LLM R² above REG's over the same
            # subspaces) appears at d = 2 at laptop scale; see EXPERIMENTS.md
            # for the d = 5 discussion.
            assert llm_cod[-1] > reg_cod[-1]
