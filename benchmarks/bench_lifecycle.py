"""Drift recovery benchmark: managed vs unmanaged serving under drift.

The serving premise — answer analytics from the trained model — erodes
when the data and the traffic move: coverage decays, the hybrid fallback
rate climbs, and (because the stale engine no longer matches the stored
rows) even the fallback answers go wrong.  This benchmark replays that
scenario against two identical deployments of the same initial model:

* **managed** — supervised by a :class:`~repro.dbms.lifecycle.ModelManager`
  (tick per traffic round): sliding-window drift detection, retraining on
  the recorded recent queries against the refreshed store-backed engine,
  versioned persistence, atomic hot-swap, probe-gated rollback;
* **unmanaged** — the frozen seed deployment: same model, same engine,
  nobody watching.

Both serve the same statement stream round by round.  Mid-run the world
drifts: the data surface translates (:class:`~repro.data.functions
.DriftingFunction`), fresh rows land in the SQLite store, and the traffic
moves to a region the model never saw.  The benchmark records per-round
fallback rate and RMSE (vs. the *current* exact answers) for both
deployments and asserts the recovery gates:

* the managed deployment retrains at least once and its post-drift
  fallback rate recovers to <= 1.5x the pre-drift rate (+0.02 slack),
* the unmanaged deployment stays degraded (its final-round fallback rate
  remains above the drift threshold),
* every statement of every round answers (no errors, no crashes), and
  no session is ever restarted.

Results are emitted through the ``repro.bench`` harness: a
:class:`~repro.bench.RunRecord` appended to the JSONL results store plus
one ``BENCH_lifecycle.json`` artifact.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_lifecycle.py [--smoke]
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.bench import BenchmarkSpec
from repro.bench.cli import pytest_entry, script_main
from repro.config import ModelConfig, TrainingConfig
from repro.core.model import LLMModel
from repro.data.functions import DriftingFunction, SineRidge
from repro.data.synthetic import SyntheticDataset
from repro.dbms.executor import ExactQueryEngine
from repro.dbms.lifecycle import DriftPolicy, ModelManager, ModelVersionStore
from repro.dbms.serving import AnalyticsService
from repro.dbms.storage import SQLiteDataStore
from repro.queries.stream import LabelledWorkload
from repro.queries.workload import (
    QueryWorkloadGenerator,
    RadiusDistribution,
    WorkloadSpec,
)

TABLE = "drifting"

#: Post-drift recovery gate: the managed deployment's recovered fallback
#: rate must come back to within this factor of the pre-drift rate.
RECOVERY_FACTOR = 1.5

#: Additive slack of the recovery gate (a pre-drift rate of ~0 would make
#: the multiplicative gate alone unsatisfiable).
RECOVERY_SLACK = 0.02

#: The unmanaged deployment must remain at least this degraded after the
#: drift (it has nobody to retrain it).
DEGRADED_FLOOR = 0.5


class _TickClock:
    """A deterministic clock advanced once per traffic round."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _workload(low: float, high: float, count: int, seed: int):
    spec = WorkloadSpec(
        dimension=2,
        center_low=low,
        center_high=high,
        radius=RadiusDistribution(mean=0.1, std=0.02),
    )
    return QueryWorkloadGenerator(spec, seed=seed).generate(count)


def _statement(query) -> str:
    center = ", ".join(repr(float(value)) for value in query.center)
    return f"SELECT AVG(u) FROM {TABLE} WITHIN {float(query.radius)!r} OF ({center})"


def _train_model(engine, queries) -> LLMModel:
    workload = LabelledWorkload.from_queries(queries, engine.mean_value)
    model = LLMModel(
        dimension=2,
        config=ModelConfig(quantization_coefficient=0.05),
        training=TrainingConfig(convergence_threshold=1e-4),
    )
    model.fit(workload)
    return model


def _round_metrics(service, queries, statements, truth_engine) -> dict:
    """Serve one round and report its fallback rate / RMSE vs current truth."""
    before = service.statistics_for(TABLE).snapshot()
    results = service.execute_script(statements, mode="hybrid")
    after = service.statistics_for(TABLE)
    served = after.statements_executed - before.statements_executed
    fallbacks = after.fallback_count - before.fallback_count
    errors = after.error_count - before.error_count
    truth = truth_engine.execute_q1_batch(queries, on_empty="null")
    served_values, truth_values = [], []
    for result, answer in zip(results, truth):
        if answer is None or result.value is None:
            continue
        served_values.append(float(result.value))
        truth_values.append(float(answer.mean))
    if truth_values:
        rmse = float(
            np.sqrt(
                np.mean(
                    (np.asarray(served_values) - np.asarray(truth_values)) ** 2
                )
            )
        )
    else:
        rmse = 0.0
    return {
        "statements": served,
        "fallback_rate": fallbacks / served if served else 0.0,
        "errors": errors,
        "rmse": rmse,
    }


def run_lifecycle_benchmark(
    dataset_size: int = 4_000,
    append_size: int = 2_000,
    training_queries: int = 220,
    traffic_per_round: int = 80,
    rounds_pre: int = 2,
    rounds_post: int = 5,
    *,
    seed: int = 42,
) -> dict:
    """Replay the drift scenario against managed and unmanaged deployments."""
    rng = np.random.default_rng(seed)
    surface = DriftingFunction(SineRidge(dimension=2), velocity=0.15)
    inputs = rng.uniform(0, 1, size=(dataset_size, 2))
    dataset = SyntheticDataset(
        inputs=inputs, outputs=surface(inputs), name=TABLE, domain=(0.0, 1.0)
    )
    with tempfile.TemporaryDirectory(prefix="bench-lifecycle-") as tmp, SQLiteDataStore(
        ":memory:"
    ) as store:
        store.load_dataset(dataset)

        managed = AnalyticsService(query_log_size=512)
        managed_engine = managed.register_table_from_store(store, TABLE)
        model = _train_model(
            managed_engine, _workload(0.05, 0.45, training_queries, seed=1)
        )
        managed.swap_model(TABLE, model, version="v0")
        clock = _TickClock()
        manager = ModelManager(
            managed,
            policy=DriftPolicy(
                fallback_rate_threshold=0.3,
                min_window_statements=min(30, traffic_per_round),
                window_buckets=4,
                cooldown_seconds=5.0,
                min_retrain_queries=min(30, traffic_per_round),
                probe_size=64,
            ),
            version_store=ModelVersionStore(Path(tmp) / "versions"),
            clock=clock,
        )
        manager.manage(TABLE, store=store)

        # The unmanaged deployment: same model, its own (soon stale) engine.
        unmanaged = AnalyticsService(
            engines={TABLE: ExactQueryEngine.from_store(store, TABLE)},
            models={TABLE: model},
        )
        truth_engine = managed_engine

        series = {"managed": [], "unmanaged": []}
        statuses: list[str] = []
        drift_round = rounds_pre
        total_rounds = rounds_pre + rounds_post
        for round_index in range(total_rounds):
            if round_index == drift_round:
                # The world moves: the surface drifts, new rows land in the
                # store, and the analysts shift to the upper region.
                surface.advance(1.0)
                fresh = rng.uniform(0, 1, size=(append_size, 2))
                store.append_rows(TABLE, fresh, surface(fresh))
                truth_engine = ExactQueryEngine.from_store(store, TABLE)
            if round_index < drift_round:
                low, high = 0.05, 0.45
            else:
                low, high = 0.55, 0.95
            queries = _workload(low, high, traffic_per_round, seed=100 + round_index)
            statements = [_statement(query) for query in queries]
            for label, service in (("managed", managed), ("unmanaged", unmanaged)):
                metrics = _round_metrics(service, queries, statements, truth_engine)
                metrics["round"] = round_index
                metrics["drifted"] = round_index >= drift_round
                series[label].append(metrics)
            clock.now += 60.0
            status = manager.tick(clock.now)[TABLE]
            statuses.append(status)
            if status == "retrained":
                # The managed deployment now serves a refreshed engine; the
                # truth reference follows the store either way.
                truth_engine = managed.engine_for(TABLE)

        pre_rate = float(
            np.mean([m["fallback_rate"] for m in series["managed"][:rounds_pre]])
        )
        managed_final = series["managed"][-1]
        unmanaged_final = series["unmanaged"][-1]
        lifecycle = manager.status_for(TABLE)
        return {
            "setup": {
                "dataset_size": dataset_size,
                "append_size": append_size,
                "training_queries": training_queries,
                "traffic_per_round": traffic_per_round,
                "rounds_pre": rounds_pre,
                "rounds_post": rounds_post,
                "prototype_count_initial": model.prototype_count,
            },
            "series": series,
            "tick_statuses": statuses,
            "pre_drift_fallback_rate": pre_rate,
            "managed_final": managed_final,
            "unmanaged_final": unmanaged_final,
            "retrain_count": lifecycle["retrain_count"],
            "rollback_count": lifecycle["rollback_count"],
            "model_version_final": str(lifecycle["model_version"]),
            "recovery_factor": RECOVERY_FACTOR,
            "recovery_slack": RECOVERY_SLACK,
            "degraded_floor": DEGRADED_FLOOR,
        }


def _format(result: dict) -> str:
    lines = [
        "Model lifecycle under drift (managed vs unmanaged)",
        f"  rounds:                {result['setup']['rounds_pre']} pre-drift"
        f" + {result['setup']['rounds_post']} post-drift"
        f" x {result['setup']['traffic_per_round']} statements",
        f"  pre-drift fallback:    {result['pre_drift_fallback_rate']:.3f}",
        f"  tick statuses:         {', '.join(result['tick_statuses'])}",
        f"  retrains / rollbacks:  {result['retrain_count']} /"
        f" {result['rollback_count']}",
        "  round  managed(fall/rmse)   unmanaged(fall/rmse)",
    ]
    for managed, unmanaged in zip(
        result["series"]["managed"], result["series"]["unmanaged"]
    ):
        marker = "*" if managed["drifted"] else " "
        lines.append(
            f"  {managed['round']:>4}{marker}  "
            f"{managed['fallback_rate']:.3f} / {managed['rmse']:.4f}       "
            f"{unmanaged['fallback_rate']:.3f} / {unmanaged['rmse']:.4f}"
        )
    lines.append(
        f"  final fallback:        managed "
        f"{result['managed_final']['fallback_rate']:.3f} vs unmanaged "
        f"{result['unmanaged_final']['fallback_rate']:.3f}"
    )
    return "\n".join(lines)


def _check(result: dict) -> list[str]:
    """Return the list of failed recovery gates (empty when green)."""
    failures: list[str] = []
    if result["retrain_count"] < 1:
        failures.append("the manager never retrained under drift")
    gate = (
        RECOVERY_FACTOR * result["pre_drift_fallback_rate"] + RECOVERY_SLACK
    )
    managed_final = result["managed_final"]
    if managed_final["fallback_rate"] > max(gate, 0.1):
        failures.append(
            f"managed fallback rate {managed_final['fallback_rate']:.3f} did "
            f"not recover to <= {max(gate, 0.1):.3f}"
        )
    unmanaged_final = result["unmanaged_final"]
    if unmanaged_final["fallback_rate"] < DEGRADED_FLOOR:
        failures.append(
            f"unmanaged fallback rate {unmanaged_final['fallback_rate']:.3f} "
            f"fell below the expected degraded floor {DEGRADED_FLOOR:.2f} — "
            f"the drift scenario is not stressing the model"
        )
    for label in ("managed", "unmanaged"):
        errors = sum(m["errors"] for m in result["series"][label])
        if errors:
            failures.append(f"{label} deployment produced {errors} error answers")
    return failures


def _extract(result: dict) -> dict:
    managed_errors = sum(m["errors"] for m in result["series"]["managed"])
    unmanaged_errors = sum(m["errors"] for m in result["series"]["unmanaged"])
    return {
        "pre_drift_fallback_rate": result["pre_drift_fallback_rate"],
        "managed_final_fallback_rate": result["managed_final"]["fallback_rate"],
        "managed_final_rmse": result["managed_final"]["rmse"],
        "unmanaged_final_fallback_rate": result["unmanaged_final"][
            "fallback_rate"
        ],
        "unmanaged_final_rmse": result["unmanaged_final"]["rmse"],
        "retrain_count": float(result["retrain_count"]),
        "rollback_count": float(result["rollback_count"]),
        "error_answers": float(managed_errors + unmanaged_errors),
    }


SPEC = BenchmarkSpec(
    name="lifecycle",
    title="Model lifecycle under drift (managed vs unmanaged)",
    artifact="lifecycle",
    run=run_lifecycle_benchmark,
    # The scenario is fully seeded and served on a deterministic tick
    # clock, so the recovery rates are stable enough to gate both ways.
    metrics={
        "pre_drift_fallback_rate": "info",
        "managed_final_fallback_rate": "lower",
        "managed_final_rmse": "lower",
        "unmanaged_final_fallback_rate": "info",
        "unmanaged_final_rmse": "info",
        "retrain_count": "info",
        "rollback_count": "info",
        "error_answers": "info",
    },
    extract=_extract,
    check=lambda result, params: _check(result),
    format=_format,
    default_params={
        "dataset_size": 4_000,
        "append_size": 2_000,
        "training_queries": 220,
        "traffic_per_round": 80,
        "rounds_pre": 2,
        "rounds_post": 5,
        "seed": 42,
    },
    smoke_params={
        "dataset_size": 2_500,
        "append_size": 1_200,
        "training_queries": 150,
        "traffic_per_round": 60,
        "rounds_post": 3,
    },
)


def test_lifecycle_benchmark(results_dir, record_table):
    """Benchmark-suite entry point: asserts the recovery gates."""
    pytest_entry(SPEC, results_dir, record_table)


if __name__ == "__main__":
    raise SystemExit(script_main(SPEC))
